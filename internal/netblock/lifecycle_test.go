package netblock

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/store"
)

// cluster is a loopback fleet of block servers plus the client spanning
// them — the lifecycle test's miniature real cluster.
type cluster struct {
	t        *testing.T
	backends []*store.MemBackend
	mu       sync.Mutex
	servers  []*Server
	client   *Client
}

// startCluster boots n block servers on ephemeral loopback ports, each
// with its own MemBackend (one "disk" per node process), and a client
// spanning them.
func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	cl := &cluster{t: t, backends: make([]*store.MemBackend, n), servers: make([]*Server, n)}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cl.backends[i] = store.NewMemBackend()
		srv, addr, err := StartLocal(cl.backends[i])
		if err != nil {
			t.Fatal(err)
		}
		cl.servers[i] = srv
		addrs[i] = addr
	}
	c, err := Dial(addrs, Options{DialTimeout: time.Second, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cl.client = c
	t.Cleanup(func() {
		c.Close()
		for i := range cl.servers {
			cl.server(i).Close()
		}
	})
	return cl
}

func (cl *cluster) server(i int) *Server {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.servers[i]
}

// kill hard-stops node i's server (SIGKILL equivalent: listener and all
// connections die mid-request).
func (cl *cluster) kill(i int) { cl.server(i).Close() }

// restartEmpty brings node i back as a fresh process with an empty disk
// on a new port, repointing the client — the revived-but-wiped node of
// the lifecycle story.
func (cl *cluster) restartEmpty(i int) {
	cl.t.Helper()
	be := store.NewMemBackend()
	srv, addr, err := StartLocal(be)
	if err != nil {
		cl.t.Fatal(err)
	}
	cl.mu.Lock()
	cl.backends[i] = be
	cl.servers[i] = srv
	cl.mu.Unlock()
	if err := cl.client.SetNode(i, addr); err != nil {
		cl.t.Fatal(err)
	}
}

// killAfter wraps a writer and hard-stops a server once limit bytes have
// passed through — the mid-get kill.
type killAfter struct {
	w     io.Writer
	limit int64
	n     int64
	once  sync.Once
	kill  func()
}

func (k *killAfter) Write(p []byte) (int, error) {
	n, err := k.w.Write(p)
	k.n += int64(n)
	if k.n >= k.limit {
		k.once.Do(k.kill)
	}
	return n, err
}

// TestNetClusterLifecycle is the end-to-end story over real TCP: stream
// a 64 MiB object into a 16-process loopback cluster, SIGKILL one node
// mid-read and get the whole object back anyway (degraded read), then
// bring the node back empty and watch ScrubPresence + a repair drain
// restore full health. Runs under -race in CI.
func TestNetClusterLifecycle(t *testing.T) {
	const (
		size      = 64 << 20
		blockSize = 1 << 20
	)
	codec := store.NewXorbasCodec()
	n := codec.NStored()
	cl := startCluster(t, n)
	s, err := store.New(store.Config{
		Codec:     codec,
		Backend:   cl.client,
		Nodes:     n,
		Racks:     8,
		BlockSize: blockSize,
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.PutReader("obj", pattern.NewReader(size)); err != nil {
		t.Fatalf("stream put over TCP: %v", err)
	}
	m := s.Metrics()
	if m.WireSentBytes < size {
		t.Fatalf("put sent %d wire bytes for a %d-byte object; traffic is not crossing the network", m.WireSentBytes, size)
	}

	// Pick a victim that holds a data block of the final stripe, so the
	// mid-read kill (after stripe 0 drains, long before the final
	// stripe's prefetch) is guaranteed to force a degraded stripe.
	nStripes := (size + 10*blockSize - 1) / (10 * blockSize)
	victim, _, err := s.BlockLocation("obj", nStripes-1, 0)
	if err != nil {
		t.Fatal(err)
	}

	verify := &pattern.Verifier{}
	w := &killAfter{w: verify, limit: 10 * blockSize, kill: func() { cl.kill(victim) }}
	info, err := s.GetWriter("obj", w)
	if err != nil {
		t.Fatalf("degraded read after mid-get node kill: %v", err)
	}
	if verify.Err != nil || verify.N != size {
		t.Fatalf("read returned wrong bytes: n=%d err=%v", verify.N, verify.Err)
	}
	if !info.Degraded {
		t.Fatalf("read of stripe data on a killed node was not degraded: %+v", info)
	}

	// The node process comes back with an empty disk. Detection is the
	// store-level liveness flag (HDFS would see missed heartbeats):
	// presence-walk the manifests while the node is marked dead, revive
	// it once its replacement is up, then drain the queue.
	s.KillNode(victim)
	rm := store.NewRepairManager(s, 2)
	sc := store.NewScrubber(s, rm, 0)
	rep := sc.ScrubPresence()
	if rep.Missing == 0 {
		t.Fatal("presence walk found nothing on the dead node")
	}
	cl.restartEmpty(victim)
	s.ReviveNode(victim)
	rm.Start()
	rm.Drain()
	rm.Stop()

	// Full health: a byte-level scrub of every block over the wire finds
	// nothing, and a fresh read is clean, not degraded.
	rm2 := store.NewRepairManager(s, 2)
	rm2.Start()
	rep = store.NewScrubber(s, rm2, 0).ScrubOnce()
	rm2.Drain()
	rm2.Stop()
	if rep.Missing != 0 || rep.Corrupt != 0 {
		t.Fatalf("after repair drain the scrub still sees %d missing / %d corrupt blocks", rep.Missing, rep.Corrupt)
	}
	verify2 := &pattern.Verifier{}
	info, err = s.GetWriter("obj", verify2)
	if err != nil {
		t.Fatalf("clean read after repair: %v", err)
	}
	if info.Degraded {
		t.Fatal("read is still degraded after the repair drain restored the node")
	}
	if verify2.Err != nil || verify2.N != size {
		t.Fatalf("post-repair read returned wrong bytes: n=%d err=%v", verify2.N, verify2.Err)
	}
}
