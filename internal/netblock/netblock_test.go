package netblock

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// startServer boots a server on an ephemeral loopback port and returns
// it with its address.
func startServer(t *testing.T, be store.Backend) (*Server, string) {
	t.Helper()
	srv, addr, err := StartLocal(be)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dialTest(t *testing.T, addrs ...string) *Client {
	t.Helper()
	c, err := Dial(addrs, Options{DialTimeout: time.Second, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientServerRoundTrip drives every op of the protocol over real
// TCP: write, read back (byte-exact), delete, read-not-found, ping.
func TestClientServerRoundTrip(t *testing.T) {
	be := store.NewMemBackend()
	_, addr := startServer(t, be)
	c := dialTest(t, addr)

	block := store.FrameBlock([]byte("the quick brown fox"))
	if err := c.Write(0, "obj.g000001.s00000.b00", block); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.Read(0, "obj.g000001.s00000.b00")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, block) {
		t.Fatalf("read returned %d bytes, want the %d written", len(got), len(block))
	}
	// The framed payload crossed the wire untouched: it still unframes.
	payload, err := store.UnframeBlock(got)
	if err != nil {
		t.Fatalf("unframe after round trip: %v", err)
	}
	if string(payload) != "the quick brown fox" {
		t.Fatalf("payload corrupted on the wire: %q", payload)
	}
	if err := c.Ping(0); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := c.Delete(0, "obj.g000001.s00000.b00"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Read(0, "obj.g000001.s00000.b00"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("read after delete: got %v, want ErrNotFound", err)
	}
	// Deleting a missing block is not an error (the Backend contract).
	if err := c.Delete(0, "never-existed"); err != nil {
		t.Fatalf("delete missing: %v", err)
	}
	// A rejected key comes back as the typed sentinel, matchable with
	// errors.Is exactly as a local backend's would be.
	if _, err := c.Read(0, ".."); !errors.Is(err, store.ErrBadKey) {
		t.Fatalf("read of hostile key: got %v, want ErrBadKey", err)
	}
}

// TestWireCounters checks the per-node sent/received accounting against
// the protocol's exact frame sizes.
func TestWireCounters(t *testing.T) {
	be := store.NewMemBackend()
	_, addr := startServer(t, be)
	c := dialTest(t, addr)

	key := "k"
	block := store.FrameBlock(make([]byte, 1000))
	if err := c.Write(0, key, block); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(0, key); err != nil {
		t.Fatal(err)
	}
	sent, recv := c.WireTraffic()
	wantSent := requestWireLen(key, block) + requestWireLen(key, nil)
	wantRecv := int64(respHeaderLen) + int64(respHeaderLen+len(block))
	if sent[0] != wantSent {
		t.Errorf("sent[0] = %d, want %d", sent[0], wantSent)
	}
	if recv[0] != wantRecv {
		t.Errorf("recv[0] = %d, want %d", recv[0], wantRecv)
	}
}

// TestRetryAfterServerRestart kills the server under a client holding a
// pooled connection, restarts it elsewhere, repoints the node, and
// checks the next operation survives via retry on a fresh dial.
func TestRetryAfterServerRestart(t *testing.T) {
	be := store.NewMemBackend()
	srv, addr := startServer(t, be)
	c := dialTest(t, addr)

	block := store.FrameBlock([]byte("survives a restart"))
	if err := c.Write(0, "k", block); err != nil {
		t.Fatal(err)
	}
	// Hard-stop the server: the client's pooled connection is now dead.
	srv.Close()
	_, addr2 := startServer(t, be)
	if err := c.SetNode(0, addr2); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0, "k")
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(got, block) {
		t.Fatal("read after restart returned different bytes")
	}
}

// TestUnreachableNode checks that a node nobody listens on fails with a
// bounded number of dial attempts and a useful error, not a hang.
func TestUnreachableNode(t *testing.T) {
	// Reserve a port and close it, so nothing is listening there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c, err := Dial([]string{addr}, Options{DialTimeout: 200 * time.Millisecond, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(0); err == nil {
		t.Fatal("ping of a closed port succeeded")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want an unreachable error, got: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("failure took %v; retries are not bounded", d)
	}
}

// TestRemoteErrorDoesNotRetry checks that an application-level failure
// reported by the server comes back once, verbatim, without burning
// retries or the connection.
func TestRemoteErrorDoesNotRetry(t *testing.T) {
	be := newFailingBackend()
	_, addr := startServer(t, be)
	c := dialTest(t, addr)
	err := c.Write(0, "k", []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("want the remote error surfaced, got: %v", err)
	}
	if got := be.writes.Load(); got != 1 {
		t.Fatalf("server saw %d writes; remote errors must not retry", got)
	}
}

// TestBadAddressSetNode covers Dial and SetNode input validation.
func TestBadAddressSetNode(t *testing.T) {
	if _, err := Dial(nil, Options{}); err == nil {
		t.Fatal("Dial with no addresses succeeded")
	}
	if _, err := Dial([]string{""}, Options{}); err == nil {
		t.Fatal("Dial with an empty address succeeded")
	}
	c, err := Dial([]string{"127.0.0.1:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetNode(5, "127.0.0.1:2"); err == nil {
		t.Fatal("SetNode out of range succeeded")
	}
	if err := c.Write(-1, "k", nil); err == nil {
		t.Fatal("Write to node -1 succeeded")
	}
}

// TestOversizeKeyRejected checks the server survives a protocol
// violation (a key over the wire limit) by dropping the connection, and
// keeps serving new ones.
func TestOversizeKeyRejected(t *testing.T) {
	be := store.NewMemBackend()
	_, addr := startServer(t, be)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bogus := appendRequest(nil, opRead, 0, strings.Repeat("x", maxKeyLen+1), nil)
	if _, err := conn.Write(bogus); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered an oversize key instead of dropping the connection")
	}
	// The server is still healthy for well-formed clients.
	c := dialTest(t, addr)
	if err := c.Ping(0); err != nil {
		t.Fatalf("ping after violation: %v", err)
	}
}

// TestPayloadOnNonWriteRejected: only writes carry payloads, so a ping
// claiming one is a protocol violation — the server drops the
// connection without buffering the claimed bytes, and keeps serving
// well-formed clients.
func TestPayloadOnNonWriteRejected(t *testing.T) {
	be := store.NewMemBackend()
	_, addr := startServer(t, be)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bogus := appendRequest(nil, opPing, 0, "", []byte("junk"))
	if _, err := conn.Write(bogus); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a payload-bearing ping instead of dropping the connection")
	}
	c := dialTest(t, addr)
	if err := c.Ping(0); err != nil {
		t.Fatalf("ping after violation: %v", err)
	}
}

// TestHostileRequestsRejected sends wire requests no real client emits —
// path-traversal keys, ".."/empty keys, a negative node id — and asserts
// the server answers statusBadKey without the backend ever seeing them.
// The backend is a DirBackend rooted one level below a temp dir, so a
// traversal key that slipped through would land a file outside the
// store root; the test checks none does.
func TestHostileRequestsRejected(t *testing.T) {
	root := t.TempDir()
	be, err := store.NewDirBackend(filepath.Join(root, "store"))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, be)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := store.FrameBlock([]byte("owned"))
	hostile := []struct {
		op   byte
		node int
		key  string
		data []byte
	}{
		{opWrite, 0, "../../escape", payload},
		{opRead, 0, "../../../../etc/passwd", nil},
		{opDelete, 0, "..", nil},
		{opRead, 0, ".", nil},
		{opWrite, 0, "", payload},
		{opRead, -1, "obj.g000001.s00000.b00", nil},
		{opWrite, -7, "obj.g000001.s00000.b00", payload},
	}
	for _, tc := range hostile {
		if _, err := conn.Write(appendRequest(nil, tc.op, tc.node, tc.key, tc.data)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		status, body, _, err := readResponse(conn, nil)
		if err != nil {
			t.Fatalf("op %q node %d key %q: %v", tc.op, tc.node, tc.key, err)
		}
		if status != statusBadKey {
			t.Fatalf("op %q node %d key %q: status %d (%q), want statusBadKey",
				tc.op, tc.node, tc.key, status, body)
		}
	}
	// Nothing escaped the store root: the traversal write would have
	// landed at root/escape.
	if _, err := os.Stat(filepath.Join(root, "escape")); !os.IsNotExist(err) {
		t.Fatalf("traversal write escaped the store root (stat err %v)", err)
	}
	// The connection survived the rejections and well-formed requests
	// still work on it and on fresh clients.
	c := dialTest(t, addr)
	if err := c.Ping(0); err != nil {
		t.Fatalf("ping after hostile requests: %v", err)
	}
}

// TestReadBodyBounded exercises readBody's chunked path: a header
// claiming the protocol-maximum payload backed by a short stream must
// fail with ErrUnexpectedEOF (having allocated only for the bytes that
// arrived — a 1 GiB up-front make would OOM long before this test
// finished on a constrained runner), and a payload just past the eager
// bound must round-trip byte-exact.
func TestReadBodyBounded(t *testing.T) {
	short := strings.NewReader(strings.Repeat("x", readBodyEager+10))
	if _, err := readBody(short, maxDataLen); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short large read: err = %v, want ErrUnexpectedEOF", err)
	}
	src := bytes.Repeat([]byte{0xAB}, readBodyEager+3)
	got, err := readBody(bytes.NewReader(src), len(src))
	if err != nil {
		t.Fatalf("readBody: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("readBody over the eager bound did not round-trip")
	}
}

// failingBackend rejects every write with a stable message.
type failingBackend struct {
	*store.MemBackend
	writes atomic.Int64
}

func newFailingBackend() *failingBackend {
	return &failingBackend{MemBackend: store.NewMemBackend()}
}

func (f *failingBackend) Write(node int, key string, data []byte) error {
	f.writes.Add(1)
	return errors.New("disk full")
}

// WriteOwned keeps the failure visible through the server's owned-write
// fast path, which would otherwise reach the embedded MemBackend's.
func (f *failingBackend) WriteOwned(node int, key string, data []byte) error {
	return f.Write(node, key, data)
}
