package netblock

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/store"
)

// The client's per-node failure plane: a sliding window of operation
// outcomes and latencies feeding a circuit breaker. A node that keeps
// failing transport-level stops costing callers a dial timeout per
// operation — the breaker opens and operations fail in nanoseconds,
// which the store treats like any other block failure and reconstructs
// around (the Dean & Barroso tail-tolerance playbook: fail fast, hedge,
// back off). After a jittered exponential cooldown the breaker goes
// half-open and one probe (the protocol's ping) decides whether the
// node is back.

// ErrBreakerOpen reports an operation refused locally because the
// node's circuit breaker is open — the node has failed enough
// consecutive transport attempts that dialing it again would only burn
// the caller's latency budget. It wraps store.ErrBlockNotFound for no
// one: callers distinguish it from remote answers with errors.Is.
var ErrBreakerOpen = errors.New("netblock: circuit breaker open")

// Breaker states, exported through NodeHealth snapshots as strings.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// healthWindow is a fixed-size ring of recent operation outcomes.
const healthWindow = 128

// nodeHealth is one node's failure-plane state: outcome/latency window,
// consecutive-failure counter and breaker. Guarded by its own mutex so
// the hot path never contends with the connection pool's lock.
type nodeHealth struct {
	mu sync.Mutex

	// Ring of recent outcomes: ok[i] with latency lat[i] (µs), n total
	// recorded (capped at healthWindow for the rate math).
	ok   [healthWindow]bool
	lat  [healthWindow]int64
	head int
	n    int

	consecFails int
	state       int
	openUntil   time.Time
	openStreak  int // consecutive opens without a successful close, scales the cooldown
	opens       int64
	probing     bool // a half-open probe is in flight; only one at a time
	lastErr     string

	threshold int
	cooldown  time.Duration
	maxCool   time.Duration
}

func newNodeHealth(threshold int, cooldown, maxCool time.Duration) *nodeHealth {
	return &nodeHealth{threshold: threshold, cooldown: cooldown, maxCool: maxCool}
}

// record folds one operation outcome into the window and drives the
// breaker's state machine. A success in half-open closes the breaker; a
// failure re-opens it with a doubled (jittered) cooldown. The latency
// only means anything for successes; failures record their cost too so
// the window's quantiles reflect what callers actually waited.
func (h *nodeHealth) record(success bool, d time.Duration, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ok[h.head] = success
	h.lat[h.head] = d.Microseconds()
	h.head = (h.head + 1) % healthWindow
	if h.n < healthWindow {
		h.n++
	}
	if success {
		h.consecFails = 0
		if h.state != breakerClosed {
			h.state = breakerClosed
			h.openStreak = 0
		}
		h.probing = false
		h.lastErr = ""
		return
	}
	h.consecFails++
	if err != nil {
		h.lastErr = err.Error()
	}
	h.probing = false
	if h.threshold <= 0 {
		return // breaker disabled; window-only accounting
	}
	if h.state == breakerHalfOpen || (h.state == breakerClosed && h.consecFails >= h.threshold) {
		h.trip()
	}
}

// trip opens the breaker with an exponentially growing, jittered
// cooldown. Call with h.mu held.
func (h *nodeHealth) trip() {
	h.state = breakerOpen
	h.opens++
	h.openStreak++
	cool := h.cooldown << uint(h.openStreak-1)
	if cool > h.maxCool || cool <= 0 {
		cool = h.maxCool
	}
	h.openUntil = time.Now().Add(jitter(cool))
}

// allow gates one operation: closed admits, open fails fast, and an
// open breaker past its cooldown admits exactly one caller as the
// half-open probe (probe=true tells the caller to ping before the real
// op). The losing racers of the half-open transition keep failing fast
// until the probe resolves.
func (h *nodeHealth) allow() (probe bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case breakerClosed:
		return false, nil
	case breakerHalfOpen:
		if h.probing {
			return false, fmt.Errorf("%w: probe in flight (last error: %s)", ErrBreakerOpen, h.lastErr)
		}
		h.probing = true
		return true, nil
	default: // open
		if time.Now().Before(h.openUntil) {
			return false, fmt.Errorf("%w: retry after %s (last error: %s)",
				ErrBreakerOpen, time.Until(h.openUntil).Round(time.Millisecond), h.lastErr)
		}
		h.state = breakerHalfOpen
		h.probing = true
		return true, nil
	}
}

// reset drops all health state — SetNode repointed the node at a new
// process, so the old process's failures are history.
func (h *nodeHealth) reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n, h.head, h.consecFails = 0, 0, 0
	h.state = breakerClosed
	h.openStreak = 0
	h.probing = false
	h.lastErr = ""
}

// snapshot exports the node's health as the store-level record.
func (h *nodeHealth) snapshot() store.NodeHealthInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	info := store.NodeHealthInfo{
		State:       breakerStateName(h.state),
		ConsecFails: h.consecFails,
		Opens:       h.opens,
		LastErr:     h.lastErr,
	}
	if h.n == 0 {
		return info
	}
	fails := 0
	lats := make([]int64, 0, h.n)
	for i := 0; i < h.n; i++ {
		if !h.ok[i] {
			fails++
		}
		lats = append(lats, h.lat[i])
	}
	info.WindowOps = h.n
	info.WindowErrRate = float64(fails) / float64(h.n)
	// Nearest-rank quantiles over an insertion-sorted copy: the window
	// is 128 entries, so O(n²) never matters and no import is needed.
	for i := 1; i < len(lats); i++ {
		for j := i; j > 0 && lats[j] < lats[j-1]; j-- {
			lats[j], lats[j-1] = lats[j-1], lats[j]
		}
	}
	rank := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return time.Duration(lats[i]) * time.Microsecond
	}
	info.P50 = rank(0.50)
	info.P99 = rank(0.99)
	return info
}

// jitter spreads d uniformly over [d/2, d): synchronized retries from
// many clients against one recovering node would otherwise stampede it
// back down.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
