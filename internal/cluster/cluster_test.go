package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func testConfig() Config {
	return Config{Nodes: 10, Racks: 2, NodeOutBps: 100, NodeInBps: 100, BucketSec: 10}
}

func TestValidate(t *testing.T) {
	bad := Config{Nodes: 1, NodeOutBps: 1, NodeInBps: 1}
	if bad.Validate() == nil {
		t.Error("1 node accepted")
	}
	bad = Config{Nodes: 5}
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	ok := Config{Nodes: 5, NodeOutBps: 1, NodeInBps: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Racks != 1 || ok.BucketSec != 300 {
		t.Error("defaults not filled")
	}
}

func TestRackAssignment(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Rack(0) != 0 || c.Rack(1) != 1 || c.Rack(2) != 0 {
		t.Fatal("round-robin racks wrong")
	}
}

func TestKillRestartLiveNodes(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := New(eng, testConfig())
	if len(c.LiveNodes()) != 10 {
		t.Fatal("all nodes should start alive")
	}
	c.Kill(3)
	c.Kill(3) // idempotent
	if c.Alive(3) || len(c.LiveNodes()) != 9 {
		t.Fatal("kill failed")
	}
	c.Restart(3)
	if !c.Alive(3) {
		t.Fatal("restart failed")
	}
	if c.Alive(-1) || c.Alive(99) {
		t.Fatal("out-of-range nodes should not be alive")
	}
}

func TestTransferDeadEndpoints(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := New(eng, testConfig())
	c.Kill(2)
	if err := c.Transfer(2, 3, 100, TagRead, nil); err == nil {
		t.Error("dead source accepted")
	}
	if err := c.Transfer(3, 2, 100, TagRead, nil); err == nil {
		t.Error("dead destination accepted")
	}
}

func TestTransferMetrics(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := New(eng, testConfig())
	done := false
	if err := c.Transfer(0, 1, 1000, TagRead, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := c.Transfer(2, 3, 500, TagWrite, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("done callback not fired")
	}
	if math.Abs(c.M.NetOutTotal-1500) > 1e-6 {
		t.Fatalf("net out %f want 1500", c.M.NetOutTotal)
	}
	// Only TagRead counts as disk reads.
	if math.Abs(c.M.DiskReadTotal-1000) > 1e-6 {
		t.Fatalf("disk read %f want 1000", c.M.DiskReadTotal)
	}
	if c.M.NetOut.Total() != c.M.NetOutTotal {
		t.Fatal("series total inconsistent")
	}
}

// The disk cap binds egress: a node with slow disk serves slowly.
func TestDiskCapsEgress(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.DiskReadBps = 10 // much slower than the 100 B/s NIC
	c, _ := New(eng, cfg)
	var doneAt float64
	if err := c.Transfer(0, 1, 100, TagRead, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if math.Abs(doneAt-10) > 1e-6 {
		t.Fatalf("transfer took %f s, want 10 (disk-capped)", doneAt)
	}
}

func TestFabricCapsCrossRack(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.FabricBps = 10
	c, _ := New(eng, cfg)
	var sameRack, crossRack float64
	// 0→2 same rack (both rack 0); 0→1 cross rack.
	if err := c.Transfer(0, 1, 100, TagRead, func() { crossRack = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := c.Transfer(4, 2, 100, TagRead, func() { sameRack = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if crossRack <= sameRack {
		t.Fatalf("cross-rack (%f) should be slower than same-rack (%f)", crossRack, sameRack)
	}
}

func TestAddCPUSpreadsAcrossBuckets(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := New(eng, testConfig()) // bucket 10 s
	// 25 s of 50% CPU from t=0: buckets get 5, 5, 2.5 busy-seconds.
	c.AddCPU(25, 0.5)
	b := c.M.CPUBusy.Buckets()
	if len(b) != 3 || math.Abs(b[0]-5) > 1e-9 || math.Abs(b[1]-5) > 1e-9 || math.Abs(b[2]-2.5) > 1e-9 {
		t.Fatalf("buckets %v", b)
	}
	util := c.CPUUtilizationPercent(15)
	// bucket 0: 15 + 100·5/(10 nodes·10 s) = 20%.
	if math.Abs(util[0]-20) > 1e-9 {
		t.Fatalf("util %v", util)
	}
}

func TestCPUUtilizationClamped(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := New(eng, testConfig())
	c.AddCPU(10000, 1)
	for _, u := range c.CPUUtilizationPercent(50) {
		if u > 100 {
			t.Fatal("utilization above 100%")
		}
	}
}
