// Package cluster models the physical substrate of Section 5's testbeds:
// DataNode machines with NIC and disk bandwidth, racks, a shared fabric,
// and the byte/CPU counters the paper's plots are drawn from (HDFS bytes
// read, network-out traffic, disk bytes read, CPU utilization — Figs 4–6).
package cluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Config sizes a simulated cluster.
type Config struct {
	// Nodes is the number of DataNodes (50 slaves on EC2, 35 at Facebook).
	Nodes int
	// Racks spreads nodes round-robin; cross-rack flows are tagged and,
	// if FabricBps > 0, share that aggregate capacity (the Markov model's
	// γ). 0 or 1 racks disables rack awareness.
	Racks int
	// NodeOutBps / NodeInBps are per-node NIC capacities in bytes/s.
	NodeOutBps, NodeInBps float64
	// DiskReadBps caps a node's effective egress when serving blocks
	// (folded into the egress capacity as min(NodeOutBps, DiskReadBps)).
	DiskReadBps float64
	// FabricBps caps aggregate cross-rack traffic; 0 = unlimited.
	FabricBps float64
	// BucketSec is the metrics time-series resolution (300 s in the
	// paper's CloudWatch plots).
	BucketSec float64
}

// Validate fills defaults and rejects nonsense.
func (c *Config) Validate() error {
	if c.Nodes <= 1 {
		return fmt.Errorf("cluster: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.NodeOutBps <= 0 || c.NodeInBps <= 0 {
		return fmt.Errorf("cluster: node bandwidths must be positive")
	}
	if c.Racks <= 0 {
		c.Racks = 1
	}
	if c.BucketSec <= 0 {
		c.BucketSec = 300
	}
	return nil
}

// Metrics aggregates cluster-wide counters; the experiment harness reads
// them directly.
type Metrics struct {
	// NetOut / DiskRead are bucketed byte series (Figs 5a, 5b).
	NetOut   *stats.TimeSeries
	DiskRead *stats.TimeSeries
	// CPUBusy accumulates busy node-seconds per bucket (Fig 5c divides by
	// Nodes·BucketSec for a utilization percentage).
	CPUBusy *stats.TimeSeries
	// Totals since construction.
	NetOutTotal   float64
	DiskReadTotal float64
}

// Cluster is a set of nodes over a shared fluid network.
type Cluster struct {
	Eng *sim.Engine
	Net *sim.Net
	cfg Config

	alive  []bool
	rackOf []int
	M      *Metrics
}

// New builds a cluster on the engine.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := cfg.NodeOutBps
	if cfg.DiskReadBps > 0 && cfg.DiskReadBps < out {
		out = cfg.DiskReadBps
	}
	c := &Cluster{
		Eng:    eng,
		Net:    sim.NewNet(eng, cfg.Nodes, out, cfg.NodeInBps, cfg.FabricBps),
		cfg:    cfg,
		alive:  make([]bool, cfg.Nodes),
		rackOf: make([]int, cfg.Nodes),
		M: &Metrics{
			NetOut:   stats.NewTimeSeries(cfg.BucketSec),
			DiskRead: stats.NewTimeSeries(cfg.BucketSec),
			CPUBusy:  stats.NewTimeSeries(cfg.BucketSec),
		},
	}
	for i := range c.alive {
		c.alive[i] = true
		c.rackOf[i] = i % cfg.Racks
	}
	c.Net.OnProgress = func(f *sim.Flow, bytes float64) {
		t := eng.Now()
		c.M.NetOut.Add(t, bytes)
		c.M.NetOutTotal += bytes
		if f.Tag == TagRead {
			c.M.DiskRead.Add(t, bytes)
			c.M.DiskReadTotal += bytes
		}
	}
	return c, nil
}

// Flow tags for metrics attribution.
const (
	// TagRead marks block reads served from a source disk (repairs,
	// degraded reads): they count as disk bytes read at the source.
	TagRead = "read"
	// TagWrite marks block writes (rebuilt blocks stored to a DataNode).
	TagWrite = "write"
)

// Config returns the cluster's configuration (defaults filled).
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Alive reports whether a node is up.
func (c *Cluster) Alive(n int) bool { return n >= 0 && n < len(c.alive) && c.alive[n] }

// LiveNodes returns the ids of all live nodes.
func (c *Cluster) LiveNodes() []int {
	var out []int
	for i, a := range c.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Rack returns a node's rack id.
func (c *Cluster) Rack(n int) int { return c.rackOf[n] }

// Kill terminates a node (the paper's failure events: DataNode
// terminations, §5.2). Idempotent.
func (c *Cluster) Kill(n int) {
	if n >= 0 && n < len(c.alive) {
		c.alive[n] = false
	}
}

// Restart brings a node back (transient failures resolve, §1.1).
func (c *Cluster) Restart(n int) {
	if n >= 0 && n < len(c.alive) {
		c.alive[n] = true
	}
}

// Transfer starts a block transfer between live nodes and returns an
// error if either endpoint is dead. done may be nil.
func (c *Cluster) Transfer(from, to int, bytes float64, tag string, done func()) error {
	if !c.Alive(from) {
		return fmt.Errorf("cluster: source node %d is dead", from)
	}
	if !c.Alive(to) {
		return fmt.Errorf("cluster: destination node %d is dead", to)
	}
	cross := c.rackOf[from] != c.rackOf[to]
	c.Net.StartFlow(from, to, bytes, cross, tag, func(*sim.Flow) {
		if done != nil {
			done()
		}
	})
	return nil
}

// AddCPU records fraction·duration busy node-seconds starting at the
// current time, spread across buckets.
func (c *Cluster) AddCPU(durationSec, fraction float64) {
	t := c.Eng.Now()
	remaining := durationSec
	for remaining > 0 {
		bucketEnd := (float64(int(t/c.cfg.BucketSec)) + 1) * c.cfg.BucketSec
		span := bucketEnd - t
		if span > remaining {
			span = remaining
		}
		c.M.CPUBusy.Add(t, span*fraction)
		t += span
		remaining -= span
	}
}

// CPUUtilizationPercent converts the busy series into the Fig 5c average
// utilization percentage per bucket, with an optional baseline (Hadoop
// daemons, OS) added.
func (c *Cluster) CPUUtilizationPercent(baselinePercent float64) []float64 {
	busy := c.M.CPUBusy.Buckets()
	out := make([]float64, len(busy))
	denom := float64(c.cfg.Nodes) * c.cfg.BucketSec
	for i, b := range busy {
		u := baselinePercent + 100*b/denom
		if u > 100 {
			u = 100
		}
		out[i] = u
	}
	return out
}
