// The failure plane, end to end, with nobody at the keyboard: a 20-node
// loopback TCP fleet serves objects through the HTTP gateway while a
// chaos schedule kills a node process. The HealthMonitor's probes
// confirm the death (three missed beats, so one dropped packet never
// flips a node), repair drains automatically, the replacement process
// comes up empty and is re-marked alive and re-filled — and the whole
// time, reads keep returning exact bytes, with the circuit breaker
// fast-failing the dead socket and hedged reads racing reconstruction
// against stragglers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/chaos"
	"repro/internal/gateway"
	"repro/internal/netblock"
	"repro/internal/pattern"
	"repro/internal/store"
)

const (
	nodes     = 20
	blockSize = 16 << 10
	objSize   = 1 << 20 // 1 MiB
)

func main() {
	fmt.Println("== Self-healing: chaos schedule vs. health monitor ==")
	fmt.Printf("%d TCP block servers, breaker threshold 3, hedge at p90\n\n", nodes)

	cl, err := chaos.NewCluster(nodes, netblock.Options{
		DialTimeout:        250 * time.Millisecond,
		Retries:            1,
		RetryBackoff:       2 * time.Millisecond,
		BreakerThreshold:   3,
		BreakerCooldown:    50 * time.Millisecond,
		BreakerMaxCooldown: 250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	s, err := store.New(store.Config{
		Backend:       cl.Backend(),
		Nodes:         nodes,
		BlockSize:     blockSize,
		HedgeQuantile: 0.9,
		HedgeMinDelay: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	rm := store.NewRepairManager(s, 2)
	rm.Start()
	defer rm.Stop()
	sc := store.NewScrubber(s, rm, time.Hour)
	mon := store.NewHealthMonitor(s, rm, sc, store.MonitorConfig{
		Interval:        25 * time.Millisecond,
		FailThreshold:   3,
		ReviveThreshold: 2,
	})
	mon.Start()
	defer mon.Stop()

	g, err := gateway.New(gateway.Config{Store: s})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()

	// Seed an object through the front door.
	var want bytes.Buffer
	if _, err := want.ReadFrom(pattern.NewReader(objSize)); err != nil {
		log.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/t/acme/report", bytes.NewReader(want.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("seeded 1 MiB object via PUT: %s\n", resp.Status)

	// The chaos schedule: SIGKILL node 3 (listener and connections cut,
	// nothing cleaned up), no operator anywhere.
	const victim = 3
	fmt.Printf("\n-- chaos: killing node %d's process --\n", victim)
	if err := chaos.NewRunner(cl, chaos.Schedule{
		{At: 0, Node: victim, Op: chaos.OpKill},
	}).Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Reads keep working the whole time the node is dark: first attempts
	// eat the dial timeout, then the breaker opens and failure is free.
	coldRead := getExact(srv.URL, want.Bytes())
	warmRead := getExact(srv.URL, want.Bytes())
	fmt.Printf("degraded GET while dead: %v (paying dial timeouts), then %v (breaker open, fail-fast)\n",
		coldRead.Round(time.Millisecond), warmRead.Round(time.Millisecond))

	waitUntil("monitor confirms the death", func() bool { return !s.Alive(victim) })
	rm.Drain()
	m := s.Metrics()
	fmt.Printf("auto-death confirmed: AutoDeaths=%d, repair drained %d blocks (reading ~%.1f survivors each)\n",
		m.AutoDeaths, m.RepairedBlocks, float64(m.RepairBlocksRead)/float64(max(m.RepairedBlocks, 1)))

	// Replacement machine: fresh empty process on a new port. The monitor
	// needs two clean probes before trusting it (flap damping cuts both ways).
	fmt.Printf("\n-- chaos: restarting node %d with a blank disk --\n", victim)
	if err := chaos.NewRunner(cl, chaos.Schedule{
		{At: 0, Node: victim, Op: chaos.OpRestart},
	}).Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	waitUntil("monitor re-marks it alive", func() bool { return s.Alive(victim) })
	rm.Drain()
	m = s.Metrics()
	fmt.Printf("auto-revival: AutoRevivals=%d; revival scrub re-filled the blank disk\n", m.AutoRevivals)

	// A slow node (not dead — just slow) shows the hedge: past the p90
	// latency the read races parallel reconstruction against the straggler.
	fmt.Printf("\n-- chaos: node 7 turns into a straggler (+150ms per request) --\n")
	if err := cl.SetFault(7, store.Fault{Latency: 150 * time.Millisecond}); err != nil {
		log.Fatal(err)
	}
	getExact(srv.URL, want.Bytes()) // warm the latency histogram past the stall
	hedged := getExact(srv.URL, want.Bytes())
	m = s.Metrics()
	fmt.Printf("GET with straggler: %v, HedgeFires=%d HedgeWins=%d (reconstruction beat the slow socket)\n",
		hedged.Round(time.Millisecond), m.HedgeFires, m.HedgeWins)
	cl.SetFault(7, store.Fault{})

	// The operator's view of all of the above: /healthz.
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var health struct {
		Status    string `json:"status"`
		LiveNodes int    `json:"live_nodes"`
		Nodes     []struct {
			Node    int    `json:"node"`
			Alive   bool   `json:"alive"`
			Breaker string `json:"breaker"`
			Opens   int64  `json:"opens"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	hz.Body.Close()
	opens := int64(0)
	for _, n := range health.Nodes {
		opens += n.Opens
	}
	fmt.Printf("\n/healthz: status=%q live=%d/%d, breaker opens across the window: %d\n",
		health.Status, health.LiveNodes, len(health.Nodes), opens)

	// Convergence: nothing left to fix, and the bytes never lied.
	rm.Drain()
	sc.ScrubOnce()
	rm.Drain()
	if rep := sc.ScrubOnce(); rep.Missing+rep.Corrupt > 0 {
		log.Fatalf("did not converge: %+v", rep)
	}
	fmt.Println("\nconverged: full scrub clean, every GET during the chaos window was byte-exact —")
	fmt.Println("death, repair, and revival all happened on probe evidence alone, no operator in the loop")
}

// getExact GETs the seeded object and verifies the bytes, returning the
// elapsed time.
func getExact(base string, want []byte) time.Duration {
	start := time.Now()
	resp, err := http.Get(base + "/t/acme/report")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 || !bytes.Equal(body, want) {
		log.Fatalf("GET not byte-exact: status=%d err=%v len=%d", resp.StatusCode, err, len(body))
	}
	return time.Since(start)
}

func waitUntil(what string, cond func() bool) {
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting until %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("%s ✓\n", what)
}
