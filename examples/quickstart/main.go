// Quickstart: encode a stripe with the paper's (10,6,5) Locally
// Repairable Code, lose a block, and repair it by reading only 5 blocks
// instead of Reed-Solomon's 10+ — the paper's headline 2× repair saving.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/lrc"
	"repro/internal/rs"
)

func main() {
	// Ten 1 MB data blocks, as if one 10 MB file were striped.
	rng := rand.New(rand.NewSource(42))
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, 1<<20)
		rng.Read(data[i])
	}

	// Encode with the Xorbas LRC: 10 data + 4 Reed-Solomon parities +
	// 2 local XOR parities = 16 stored blocks (the third local parity is
	// implied: S1+S2+S3 = 0).
	code := lrc.NewXorbas()
	stripe, err := code.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d data blocks into %d stored blocks (overhead %.0f%%)\n",
		code.K(), code.NStored(), 100*code.StorageOverhead())

	// Lose X3 (stripe position 2).
	lost := 2
	original := stripe[lost]
	stripe[lost] = nil

	// Light repair: Eq. (1) — read X1, X2, X4, X5 and S1 only.
	reads, _, _ := code.Recipe(lost)
	payload, light, err := code.ReconstructBlock(stripe, lost)
	if err != nil {
		log.Fatal(err)
	}
	if !light || !bytes.Equal(payload, original) {
		log.Fatal("light repair failed")
	}
	fmt.Printf("repaired block %d by reading %d blocks %v (light decoder)\n", lost, len(reads), reads)

	// The Reed-Solomon baseline reads k = 10 blocks for the same repair.
	rsCode, err := rs.New256(10, 14)
	if err != nil {
		log.Fatal(err)
	}
	rsStripe, err := rsCode.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	rsStripe[lost] = nil
	if _, err := rsCode.Reconstruct(rsStripe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the RS(10,4) baseline reads %d blocks for the same single-block repair\n", rsCode.K())
	fmt.Printf("=> repair I/O reduced %d -> %d blocks (%.1fx), for 14%% more storage\n",
		rsCode.K(), len(reads), float64(rsCode.K())/float64(len(reads)))
}
