// Archival clusters (§7): for cold data one can deploy large LRCs —
// stripe sizes of 50 or 100 blocks — that combine high fault tolerance
// with small storage overhead, which is impractical with Reed-Solomon
// because RS repair traffic grows linearly in the stripe size. Local
// repairs also let most disks spin down: a single-block repair touches
// only r+1 of the stripe's disks.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/lrc"
	"repro/internal/rs"
)

func main() {
	fmt.Println("archival stripes: repair cost and disks touched per single-block repair")
	fmt.Printf("%4s | %22s | %22s\n", "k", "RS(k,4): reads/disks", "LRC(k,4,r=5): reads/disks")
	for _, k := range []int{10, 50, 100} {
		rsCode, err := rs.New256(k, k+4)
		if err != nil {
			log.Fatal(err)
		}
		lrcCode, err := lrc.New(lrc.Params{K: k, GlobalParities: 4, GroupSize: 5})
		if err != nil {
			log.Fatal(err)
		}
		reads, _, ok := lrcCode.Recipe(1)
		if !ok {
			log.Fatal("no light repair")
		}
		fmt.Printf("%4d | %10d / %-9d | %10d / %-9d\n",
			k, rsCode.K(), rsCode.N()-1, len(reads), len(reads))
	}

	// Demonstrate an actual 50-block archival stripe round-trip with a
	// lost block repaired from 5 reads.
	k := 50
	code, err := lrc.New(lrc.Params{K: k, GlobalParities: 4, GroupSize: 5})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, 64<<10)
		rng.Read(data[i])
	}
	stripe, err := code.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nencoded a %d-block archival stripe: %d stored blocks, overhead %.0f%% "+
		"(3-replication would cost 200%%)\n", k, code.NStored(), 100*code.StorageOverhead())
	lost := 17
	orig := stripe[lost]
	stripe[lost] = nil
	payload, light, err := code.ReconstructBlock(stripe, lost)
	if err != nil {
		log.Fatal(err)
	}
	if !light || !bytes.Equal(payload, orig) {
		log.Fatal("light repair failed")
	}
	reads, _, _ := code.Recipe(lost)
	fmt.Printf("repaired block %d by spinning up %d of %d disks — the rest stay down\n",
		lost, len(reads), code.NStored()-1)
}
