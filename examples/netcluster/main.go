// A real cluster over real TCP: every node is a block server on its own
// loopback socket, the store reaches them through the netblock client,
// and the paper's repair-traffic claim is measured on wire counters
// instead of in-process accounting. The walkthrough boots k+r servers
// per code, SIGKILLs two of them mid-flight, reads the object back
// anyway (degraded read over the surviving sockets), then lets one node
// return intact (a transient failure) while the other comes back with an
// empty disk and is restored by the fixer — whose wire bytes show the
// 5-vs-10 story: an LRC single-block repair pulls r=5 blocks across the
// network where RS(10,4) pulls k=10.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/netblock"
	"repro/internal/pattern"
	"repro/internal/store"
)

const (
	objectSize = 4 << 20 // 4 MiB: 7 stripes of 10×64 KiB
	blockSize  = 64 << 10
)

// node is one in-process "machine": a backend and the server exposing it.
type node struct {
	be  *store.MemBackend
	srv *netblock.Server
}

// cluster is a fleet of loopback block servers plus the client that
// spans them.
type cluster struct {
	nodes  []*node
	client *netblock.Client
}

// boot starts n block servers on ephemeral loopback ports.
func boot(n int) (*cluster, error) {
	cl := &cluster{nodes: make([]*node, n)}
	addrs := make([]string, n)
	for i := range cl.nodes {
		be := store.NewMemBackend()
		srv, addr, err := netblock.StartLocal(be)
		if err != nil {
			return nil, err
		}
		cl.nodes[i] = &node{be: be, srv: srv}
		addrs[i] = addr
	}
	c, err := netblock.Dial(addrs, netblock.Options{DialTimeout: time.Second})
	if err != nil {
		return nil, err
	}
	cl.client = c
	return cl, nil
}

// restart brings node i back on a fresh port — with its old disk when
// keep is true (a transient failure) or a blank one when false (the
// machine was replaced).
func (cl *cluster) restart(i int, keep bool) error {
	if !keep {
		cl.nodes[i].be = store.NewMemBackend()
	}
	srv, addr, err := netblock.StartLocal(cl.nodes[i].be)
	if err != nil {
		return err
	}
	cl.nodes[i].srv = srv
	return cl.client.SetNode(i, addr)
}

func (cl *cluster) shutdown() {
	cl.client.Close()
	for _, nd := range cl.nodes {
		nd.srv.Close()
	}
}

// wireTotals sums the client's per-node counters.
func wireTotals(c *netblock.Client) (sent, recv int64) {
	s, r := c.WireTraffic()
	for i := range s {
		sent += s[i]
		recv += r[i]
	}
	return sent, recv
}

type result struct {
	name       string
	repaired   int64
	repairRecv int64
}

func run(codec store.Codec) result {
	n := codec.NStored()
	fmt.Printf("-- %s: booting %d block servers on loopback --\n", codec.Name(), n)
	cl, err := boot(n)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.shutdown()
	s, err := store.New(store.Config{
		Codec: codec, Backend: cl.client, Nodes: n, Racks: 8, BlockSize: blockSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.PutReader("obj", pattern.NewReader(objectSize)); err != nil {
		log.Fatal(err)
	}
	sent, _ := wireTotals(cl.client)
	fmt.Printf("put %d MiB: %d bytes over the wire (%.2fx the object — the code's overhead, in packets)\n",
		objectSize>>20, sent, float64(sent)/float64(objectSize))

	// SIGKILL two servers: sockets die mid-conversation, nothing is
	// cleaned up. The store doesn't know — its next reads just fail and
	// reconstruct.
	kill1, kill2 := 2, 9
	cl.nodes[kill1].srv.Close()
	cl.nodes[kill2].srv.Close()
	fmt.Printf("killed node processes %d and %d (listeners and connections cut)\n", kill1, kill2)

	verify := &pattern.Verifier{}
	info, err := s.GetWriter("obj", verify)
	if err != nil || verify.Err != nil || verify.N != objectSize {
		log.Fatalf("degraded read failed: %v / %v", err, verify.Err)
	}
	fmt.Printf("degraded read: %d MiB byte-exact, %d light + %d heavy inline repairs, %d blocks fetched\n",
		verify.N>>20, info.LightRepairs, info.HeavyRepairs, info.BlocksRead)

	// Node kill1 had a transient failure: the process returns with its
	// disk intact. Node kill2's machine is gone; its replacement comes
	// up empty and the BlockFixer restores it — the presence walk finds
	// the damage from manifests alone, and the repair's reads are real
	// network transfers we can meter.
	if err := cl.restart(kill1, true); err != nil {
		log.Fatal(err)
	}
	s.KillNode(kill2)
	rm := store.NewRepairManager(s, 2)
	sc := store.NewScrubber(s, rm, 0)
	rep := sc.ScrubPresence()
	if err := cl.restart(kill2, false); err != nil {
		log.Fatal(err)
	}
	s.ReviveNode(kill2)
	sent0, recv0 := wireTotals(cl.client)
	rm.Start()
	rm.Drain()
	rm.Stop()
	sent1, recv1 := wireTotals(cl.client)
	m := s.Metrics()
	fmt.Printf("repair drain: %d stripes enqueued, %d blocks rebuilt; wire: %d bytes pulled from survivors, %d pushed back\n",
		rep.Enqueued, m.RepairedBlocks, recv1-recv0, sent1-sent0)
	fmt.Printf("  -> %.1f source blocks fetched per lost block (%d-byte blocks)\n\n",
		float64(m.RepairBlocksRead)/float64(m.RepairedBlocks), blockSize)

	// Health check: a full scrub over the wire finds nothing to fix.
	rm2 := store.NewRepairManager(s, 2)
	rm2.Start()
	if rep := store.NewScrubber(s, rm2, 0).ScrubOnce(); rep.Missing+rep.Corrupt > 0 {
		log.Fatalf("cluster not healthy after repair: %+v", rep)
	}
	rm2.Drain()
	rm2.Stop()
	return result{
		name:       codec.Name(),
		repaired:   m.RepairedBlocks,
		repairRecv: recv1 - recv0,
	}
}

func main() {
	fmt.Println("== XORing Elephants, on actual sockets ==")
	fmt.Printf("object: %d MiB, %d KiB blocks, one TCP block server per node\n\n", objectSize>>20, blockSize>>10)
	var results []result
	for _, codec := range []store.Codec{store.NewRS104Codec(), store.NewXorbasCodec()} {
		results = append(results, run(codec))
	}
	rs, lrc := results[0], results[1]
	fmt.Println("== Repair traffic, measured on the wire ==")
	fmt.Printf("  %-14s %14s %18s %18s\n", "code", "blocks fixed", "bytes pulled", "pulled/block")
	for _, r := range results {
		fmt.Printf("  %-14s %14d %18d %18.0f\n", r.name, r.repaired, r.repairRecv, float64(r.repairRecv)/float64(r.repaired))
	}
	ratio := (float64(rs.repairRecv) / float64(rs.repaired)) / (float64(lrc.repairRecv) / float64(lrc.repaired))
	fmt.Printf("\nper lost block the LRC pulls %.2fx less across the network than RS —\n", ratio)
	fmt.Println("the paper's 5-vs-10 read sets (Figs 4-6), now as TCP payloads instead of counters")
}
