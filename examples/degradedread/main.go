// Degraded reads (§1.1): 90% of data-center failure events are transient.
// While a DataNode is down, reads of its blocks are served by on-the-fly
// reconstruction — nothing is written back. This example runs a simulated
// cluster through a transient failure and compares degraded-read latency
// and traffic between HDFS-RS and HDFS-Xorbas.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
)

const mb = 1 << 20

func main() {
	for _, scheme := range []core.Scheme{core.NewRS104(), core.NewXorbas()} {
		latency, gb := run(scheme)
		fmt.Printf("%-14s: degraded read served in %5.1f s, %5.2f GB reconstruction traffic\n",
			scheme.Name(), latency, gb)
	}
	fmt.Println("(the LRC serves degraded reads ~2x cheaper: 5 streams instead of 13)")
}

func run(scheme core.Scheme) (latencySec, trafficGB float64) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: 30, NodeOutBps: 12 * mb, NodeInBps: 12 * mb,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := hdfs.New(cl, scheme, hdfs.Config{
		BlockSizeBytes: 64 * mb, SlotsPerNode: 2,
		TaskLaunchSec: 5, FixerScanSec: 1e7, // fixer idle: transient failure
		DeployedReads: true, DegradedTimeoutSec: 10,
		DecodeCPUSecPerRead: 0.3, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	stripes, err := fs.AddFile("warehouse-table", 10)
	if err != nil {
		log.Fatal(err)
	}
	s := stripes[0]

	// A node holding block X5 fails transiently.
	victim := s.Node[4]
	fs.KillNode(victim)

	// An analytics task on another node needs X5 right now.
	reader := s.Node[0]
	before := fs.Snapshot()
	start := eng.Now()
	var served float64
	fs.ReadBlock(s, 4, reader, func(degraded bool) {
		if !degraded {
			log.Fatal("expected the degraded path")
		}
		served = eng.Now() - start
	})
	eng.RunUntil(1e6) // before the (disabled) fixer
	d := fs.Delta(before)

	// The transient failure resolves: the node returns, no repair ran.
	cl.Restart(victim)
	s.Lost[4] = false
	if d.BlocksRepaired != 0 {
		log.Fatal("degraded read must not write a repair")
	}
	return served, d.HDFSBytesRead / 1e9
}
