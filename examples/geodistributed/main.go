// Geo-distributed storage (§1.1): replicating across data centers is
// expensive, and Reed-Solomon across sites is "completely impractical"
// because every repair crosses the WAN. With group-aware placement each
// LRC repair group lives inside one data center, so single-block repairs
// never touch the WAN — only rare heavy repairs do.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
)

const mb = 1 << 20

func main() {
	// Three "racks" act as three data centers connected by a thin WAN
	// fabric (1/20th of LAN speed).
	runOne := func(groupAware bool) (wanGB float64, minutes float64) {
		eng := sim.NewEngine()
		cl, err := cluster.New(eng, cluster.Config{
			Nodes: 30, Racks: 3,
			NodeOutBps: 50 * mb, NodeInBps: 50 * mb,
			FabricBps: 25 * mb, // shared WAN
		})
		if err != nil {
			log.Fatal(err)
		}
		scheme := core.NewXorbas()
		fs, err := hdfs.New(cl, scheme, hdfs.Config{
			BlockSizeBytes: 64 * mb, SlotsPerNode: 2, RepairMaxParallel: 8,
			TaskLaunchSec: 5, FixerScanSec: 30,
			DeployedReads: true, DecodeCPUSecPerRead: 0.3,
			DegradedTimeoutSec: 15, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fs.GroupAwarePlacement = groupAware
		for i := 0; i < 30; i++ {
			if _, err := fs.AddFile(fmt.Sprintf("geo%02d", i), 10); err != nil {
				log.Fatal(err)
			}
		}
		// One node fails in datacenter 0.
		victim := 0
		fs.ResetRepairWindow()
		wanBefore := wanBytes(cl)
		fs.KillNode(victim)
		eng.Run()
		return (wanBytes(cl) - wanBefore) / 1e9, fs.RepairDuration() / 60
	}

	wanRandom, durRandom := runOne(false)
	wanGrouped, durGrouped := runOne(true)
	fmt.Println("LRC(10,6,5) across 3 data centers, one node failure:")
	fmt.Printf("  random placement:      %6.2f GB over the WAN, repairs done in %4.1f min\n", wanRandom, durRandom)
	fmt.Printf("  group-aware placement: %6.2f GB over the WAN, repairs done in %4.1f min\n", wanGrouped, durGrouped)
	fmt.Println("group-aware placement keeps light repairs inside one site (§1.1).")
}

// wanBytes sums cross-rack traffic via the fabric-tagged counters: the
// cluster metrics do not split by rack, so measure with a custom hook.
var wanTotals = map[*cluster.Cluster]*float64{}

func wanBytes(cl *cluster.Cluster) float64 {
	if p, ok := wanTotals[cl]; ok {
		return *p
	}
	var total float64
	wanTotals[cl] = &total
	prev := cl.Net.OnProgress
	cl.Net.OnProgress = func(f *sim.Flow, b float64) {
		if prev != nil {
			prev(f, b)
		}
		if f.CrossRack {
			total += b
		}
	}
	return total
}
