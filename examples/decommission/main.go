// Node decommissioning as a scheduled repair (§1.1): Hadoop's
// decommission feature must copy a retiring node's data out before it
// leaves — "complicated and time consuming" because every byte squeezes
// through the retiring node's NIC. Treating decommission as a scheduled
// repair instead recreates the blocks from their repair groups across
// the whole cluster: more bytes read, but massively parallel. With the
// LRC's 5-block local repairs the byte overhead is small and the drain
// finishes much faster.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
)

const mb = 1 << 20

func main() {
	fmt.Println("decommissioning a DataNode holding ~32 blocks (100 files on 50 nodes):")
	fmt.Printf("  %-28s %-16s %10s %10s\n", "strategy", "scheme", "GB read", "minutes")
	for _, scheme := range []core.Scheme{core.NewRS104(), core.NewXorbas()} {
		gb, minutes := run(scheme, false)
		fmt.Printf("  %-28s %-16s %10.1f %10.1f\n", "copy-out (classic)", scheme.Name(), gb, minutes)
		gb, minutes = run(scheme, true)
		fmt.Printf("  %-28s %-16s %10.1f %10.1f\n", "scheduled repair (§1.1)", scheme.Name(), gb, minutes)
	}
	fmt.Println("repair-drain spreads the work over the cluster instead of one NIC;")
	fmt.Println("with the LRC it reads only 5 blocks per recreated block.")
}

func run(scheme core.Scheme, repairDrain bool) (gb, minutes float64) {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: 50, NodeOutBps: 12 * mb, NodeInBps: 12 * mb,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := hdfs.New(cl, scheme, hdfs.Config{
		BlockSizeBytes: 64 * mb, SlotsPerNode: 2,
		TaskLaunchSec: 10, FixerScanSec: 30,
		DeployedReads: true, DecodeCPUSecPerRead: 0.3,
		DegradedTimeoutSec: 15, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := fs.AddFile(fmt.Sprintf("f%02d", i), 10); err != nil {
			log.Fatal(err)
		}
	}
	victim := 13
	before := fs.Snapshot()
	start := eng.Now()
	if repairDrain {
		err = fs.DrainNode(victim, nil)
	} else {
		err = fs.CopyOutNode(victim, nil)
	}
	if err != nil {
		log.Fatal(err)
	}
	eng.Run()
	d := fs.Delta(before)
	if d.Unrecoverable > 0 {
		log.Fatalf("%d blocks unrecoverable during decommission", d.Unrecoverable)
	}
	return d.HDFSBytesRead / 1e9, (eng.Now() - start) / 60
}
