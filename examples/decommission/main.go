// Node decommissioning as a scheduled repair (§1.1): Hadoop's
// decommission feature must copy a retiring node's data out before it
// leaves — "complicated and time consuming". This walkthrough drives the
// real store's elastic-membership path instead of a simulation: a node
// is marked draining and the Rebalancer empties it.
//
// Two scenarios per codec:
//
//   - live drain: the node still answers, so each block is copied to a
//     new home — one block read per block moved, identical for both
//     codecs.
//
//   - dead drain (scheduled repair): the node is already gone when the
//     decommission lands, so every block is recreated from its stripe's
//     survivors. Here the codec decides the bill: the LRC rebuilds from
//     its 5-block repair group where RS(10,4) must read 10 blocks.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/store"
)

func main() {
	fmt.Println("decommissioning one node of 20 (32 objects, 64 KiB blocks):")
	fmt.Printf("  %-28s %-12s %8s %8s %12s %10s\n",
		"strategy", "scheme", "drained", "read", "reads/block", "elapsed")
	for _, mk := range []func() store.Codec{
		func() store.Codec { return store.NewRS104Codec() },
		func() store.Codec { return store.NewXorbasCodec() },
	} {
		for _, dead := range []bool{false, true} {
			run(mk(), dead)
		}
	}
	fmt.Println("\na live drain copies: one read per block, either codec.")
	fmt.Println("a dead drain repairs: the LRC's local groups read 5 blocks per")
	fmt.Println("rebuilt block where RS(10,4) reads 10 — decommission-as-repair")
	fmt.Println("is affordable exactly because repairs are local (§1.1).")
}

func run(codec store.Codec, dead bool) {
	s, err := store.New(store.Config{
		Codec:     codec,
		Backend:   store.NewMemBackend(),
		Nodes:     20,
		BlockSize: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	payload := make([]byte, 640<<10) // 10 data blocks: one full stripe
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	for i := 0; i < 32; i++ {
		if err := s.Put(fmt.Sprintf("f%02d", i), payload); err != nil {
			log.Fatal(err)
		}
	}

	const victim = 7
	strategy := "live drain (copy-out)"
	if dead {
		strategy = "dead drain (sched. repair)"
		s.KillNode(victim)
	}
	if err := s.Decommission(victim); err != nil {
		log.Fatal(err)
	}

	rm := store.NewRepairManager(s, 4)
	rm.Start()
	rb := store.NewRebalancer(s, rm, 0)
	start := time.Now()
	for pass := 0; pass < 5; pass++ {
		rep := rb.RebalanceOnce()
		rm.Drain()
		if rep.Remaining == 0 {
			break
		}
	}
	elapsed := time.Since(start)
	rm.Stop()

	if st := s.MemberState(victim); st != store.NodeDead {
		log.Fatalf("drain did not complete: victim is %s", st)
	}
	var buf bytes.Buffer
	if _, err := s.GetWriter("f00", &buf); err != nil || !bytes.Equal(buf.Bytes(), payload) {
		log.Fatalf("data damaged by decommission: %v", err)
	}

	m := s.Metrics()
	drained := m.RebalancedBlocks + m.RepairedBlocks
	reads := m.RebalanceBlocksRead + m.RepairBlocksRead
	perBlock := float64(reads) / float64(drained)
	fmt.Printf("  %-28s %-12s %8d %8d %12.1f %10s\n",
		strategy, codec.Name(), drained, reads, perBlock, elapsed.Round(time.Millisecond))
}
