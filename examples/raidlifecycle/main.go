// The §3 file lifecycle end to end: a file enters the warehouse 3-way
// replicated, the RaidNode RAIDs it with RS(10,4) (storage drops from
// 200% to 40% overhead), and later Xorbas migrates it incrementally to
// the (10,6,5) LRC by adding only the two local XOR parities — no data
// or RS parity block moves.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hdfs"
	"repro/internal/sim"
)

const mb = 1 << 20

func main() {
	eng := sim.NewEngine()
	cl, err := cluster.New(eng, cluster.Config{
		Nodes: 50, NodeOutBps: 12 * mb, NodeInBps: 12 * mb,
	})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := hdfs.New(cl, core.NewRS104(), hdfs.Config{
		BlockSizeBytes: 64 * mb, SlotsPerNode: 2, RepairMaxParallel: 8,
		TaskLaunchSec: 10, FixerScanSec: 30,
		DeployedReads: true, DecodeCPUSecPerRead: 0.3,
		DegradedTimeoutSec: 15, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	logical := 30.0 * 64 * mb / 1e9
	report := func(stage string) {
		stored := float64(fs.TotalBlocksStored()) * 64 * mb / 1e9
		fmt.Printf("%-28s %5.2f GB stored for %.2f GB logical (overhead %3.0f%%)\n",
			stage, stored, logical, 100*(stored/logical-1))
	}

	// 1. Ingest: 30 blocks, 3-way replicated.
	replicated, err := fs.AddReplicatedFile("clickstream", 30, 3)
	if err != nil {
		log.Fatal(err)
	}
	report("ingested (3-replication):")

	// 2. The RaidNode RAIDs the now-cold file with RS(10,4).
	var rsStripes []*hdfs.Stripe
	if err := fs.RaidFile("clickstream", replicated, func(s []*hdfs.Stripe) { rsStripes = s }); err != nil {
		log.Fatal(err)
	}
	eng.Run()
	report("RAIDed (RS 10,4):")

	// 3. Migration to Xorbas: add local parities only.
	before := fs.Snapshot()
	var lrcStripes []*hdfs.Stripe
	if err := fs.MigrateToLRC("clickstream", rsStripes, core.NewXorbas(), func(s []*hdfs.Stripe) { lrcStripes = s }); err != nil {
		log.Fatal(err)
	}
	eng.Run()
	report("migrated (LRC 10,6,5):")
	d := fs.Delta(before)
	fmt.Printf("migration moved only %.2f GB (reads for the local parities); data blocks untouched\n",
		d.HDFSBytesRead/1e9)

	// 4. And now single-block repairs are local.
	b2 := fs.Snapshot()
	fs.KillNode(lrcStripes[0].Node[2])
	eng.Run()
	d2 := fs.Delta(b2)
	fmt.Printf("single-node failure afterwards: %d light repairs, %d heavy\n",
		d2.LightRepairs, d2.HeavyRepairs)
}
