// Real bytes through the Xorbas datapath: this walkthrough runs the same
// node-failure story as the Section 5 experiments, but on the byte-level
// object store (repro/internal/store) instead of the fluid simulation —
// ingest, rack-aware placement, a node kill, degraded reads, and the
// scrubber + prioritized repair queue rebuilding the lost blocks. The
// punchline matches Figs 4–6: for every block lost, the LRC's light
// decoder reads r=5 blocks where RS(10,4) reads k=10, so LRC repair
// traffic is half of RS on identical damage.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"

	"repro/internal/pattern"
	"repro/internal/store"
)

const (
	objectSize = 4 << 20 // 4 MiB: 7 stripes of 10×64 KiB
	nodes      = 24
	racks      = 8
)

type result struct {
	name         string
	repaired     int64
	repairBlocks int64
	repairBytes  int64
}

func main() {
	fmt.Println("== A real object store on the paper's codes ==")
	fmt.Printf("object: %d MiB, %d nodes, %d racks, 64 KiB blocks\n\n", objectSize>>20, nodes, racks)
	rng := rand.New(rand.NewSource(42))
	payload := make([]byte, objectSize)
	rng.Read(payload)

	var results []result
	for _, codec := range []store.Codec{store.NewRS104Codec(), store.NewXorbasCodec()} {
		results = append(results, run(codec, payload))
	}

	fmt.Println("\n== Repair traffic on the real datapath (one node killed) ==")
	fmt.Printf("  %-14s %12s %14s %16s\n", "code", "blocks fixed", "blocks read", "bytes read")
	for _, r := range results {
		fmt.Printf("  %-14s %12d %14d %16d\n", r.name, r.repaired, r.repairBlocks, r.repairBytes)
	}
	rs, lrc := results[0], results[1]
	if lrc.repaired > 0 && rs.repaired > 0 {
		perLRC := float64(lrc.repairBytes) / float64(lrc.repaired)
		perRS := float64(rs.repairBytes) / float64(rs.repaired)
		fmt.Printf("\nper lost block: LRC reads %.0f bytes, RS reads %.0f — %.2fx less traffic\n",
			perLRC, perRS, perRS/perLRC)
		fmt.Println("(the paper's locality win, measured in real bytes instead of simulated flows)")
	}

	streaming()
}

// streaming is the second act: a 256 MiB object — four times the heap
// the runtime is allowed — moves through PutReader/GetWriter on a disk
// backend one stripe at a time, the paper's multi-GB HDFS blocks scaled
// to a walkthrough. The buffered Put/Get would need the whole object
// resident; the streaming path needs one 10 MiB stripe.
func streaming() {
	const (
		memLimit   = 64 << 20
		objectSize = 256 << 20
	)
	fmt.Printf("\n== Streaming a larger-than-heap object (GOMEMLIMIT %d MiB, object %d MiB) ==\n",
		memLimit>>20, objectSize>>20)
	old := debug.SetMemoryLimit(memLimit)
	defer debug.SetMemoryLimit(old)

	dir, err := os.MkdirTemp("", "realstore-stream-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	be, err := store.NewDirBackend(dir)
	if err != nil {
		log.Fatal(err)
	}
	// The manifests live in a write-ahead-logged metadata plane next to
	// the blocks: every put below is durable the moment it returns, and
	// act three reopens the store from it.
	metaDir := dir + "-meta"
	defer os.RemoveAll(metaDir)
	s, err := store.New(store.Config{Nodes: nodes, Racks: racks, Backend: be, BlockSize: 1 << 20, MetaDir: metaDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.PutReader("elephant", pattern.NewReader(objectSize)); err != nil {
		log.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("put: %d MiB streamed to disk; heap in use %d MiB (object never resident)\n",
		objectSize>>20, ms.HeapInuse>>20)

	// Kill a node and stream the object back degraded: every single-loss
	// stripe is rebuilt by the light decoder mid-stream.
	victim, _, err := s.BlockLocation("elephant", 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	s.KillNode(victim)
	v := &pattern.Verifier{}
	info, err := s.GetWriter("elephant", v)
	if err != nil {
		log.Fatal(err)
	}
	if v.N != objectSize {
		log.Fatalf("streamed %d bytes, want %d", v.N, objectSize)
	}
	runtime.ReadMemStats(&ms)
	fmt.Printf("node %d killed; degraded streaming read: byte-exact, %d light / %d heavy inline repairs\n",
		victim, info.LightRepairs, info.HeavyRepairs)
	fmt.Printf("read %d blocks / %d MiB; heap in use %d MiB, peak sys %d MiB — bounded by stripes, not the object\n",
		info.BlocksRead, info.BytesRead>>20, ms.HeapInuse>>20, ms.HeapSys>>20)

	// Act three: restart. Close checkpoints the metadata plane, so the
	// reopened store recovers every manifest — and the node death — from
	// it directly: no WAL replay, no walk over 256 MiB of blocks.
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	s2, err := store.New(store.Config{Nodes: nodes, Racks: racks, Backend: be, BlockSize: 1 << 20, MetaDir: metaDir})
	if err != nil {
		log.Fatal(err)
	}
	defer s2.Close()
	objects, replayed := s2.MetaRecovered()
	v2 := &pattern.Verifier{}
	if _, err := s2.GetWriter("elephant", v2); err != nil || v2.N != objectSize {
		log.Fatalf("read after restart: %v (%d bytes)", err, v2.N)
	}
	fmt.Printf("restart: %d manifest(s) recovered from the metadata plane (%d WAL records replayed), "+
		"node %d still dead, object byte-exact\n", objects, replayed, victim)
}

func run(codec store.Codec, payload []byte) result {
	s, err := store.New(store.Config{Codec: codec, Nodes: nodes, Racks: racks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- %s --\n", codec.Name())
	if err := s.Put("warehouse-table", payload); err != nil {
		log.Fatal(err)
	}
	m := s.Metrics()
	fmt.Printf("put: %d blocks / %d bytes written (%.1fx of the payload stored)\n",
		m.PutBlocks, m.PutBytes, float64(m.PutBytes)/float64(len(payload)))

	// Kill the node holding stripe 0's block X3 (a §5.2 DataNode
	// termination), then read while the store is degraded.
	victim, _, err := s.BlockLocation("warehouse-table", 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	s.KillNode(victim)
	got, info, err := s.Get("warehouse-table")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("degraded read returned wrong bytes")
	}
	fmt.Printf("node %d killed; degraded read: byte-exact, %d light / %d heavy inline repairs\n",
		victim, info.LightRepairs, info.HeavyRepairs)

	// The BlockFixer: scrub finds the dead node's blocks, the prioritized
	// queue rebuilds them onto live nodes.
	rm := store.NewRepairManager(s, 3)
	rm.Start()
	defer rm.Stop()
	sc := store.NewScrubber(s, rm, 0)
	rep := sc.ScrubOnce()
	rm.Drain()
	m = s.Metrics()
	fmt.Printf("scrub: %d stripes, %d blocks missing; repair: %d rebuilt (%d light / %d heavy)\n",
		rep.Stripes, rep.Missing, m.RepairedBlocks, m.RepairsLight, m.RepairsHeavy)
	if got, info, err = s.Get("warehouse-table"); err != nil || !bytes.Equal(got, payload) || info.Degraded {
		log.Fatal("post-repair read not clean")
	}
	fmt.Println("post-repair read: clean")

	return result{
		name:         codec.Name(),
		repaired:     m.RepairedBlocks,
		repairBlocks: m.RepairBlocksRead,
		repairBytes:  m.RepairBytesRead,
	}
}
