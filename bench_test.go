// Package main's bench harness regenerates every table and figure of the
// paper's evaluation (Section 5) plus the ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each Benchmark prints the paper-style rows once (on the first
// iteration) and then times the underlying experiment; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/gf"
	"repro/internal/lrc"
	"repro/internal/markov"
	"repro/internal/meta"
	"repro/internal/netblock"
	"repro/internal/pattern"
	"repro/internal/store"
)

// printOnce guards the one-time report printing inside benchmarks.
var printOnce sync.Map

func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

// BenchmarkTable1MTTDL regenerates Table 1: storage overhead, repair
// traffic, and MTTDL for 3-replication, RS(10,4) and LRC(10,6,5).
func BenchmarkTable1MTTDL(b *testing.B) {
	once("table1", func() {
		if err := experiments.Table1(os.Stdout); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := markov.Table1(markov.FacebookParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2RepairUnderWorkload regenerates Table 2 and Fig 7: ten
// WordCount jobs with ~20% of required blocks missing.
func BenchmarkTable2RepairUnderWorkload(b *testing.B) {
	cfg := experiments.DefaultWorkload()
	once("table2", func() {
		base, err := experiments.RunWorkload(core.NewRS104(), false, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := experiments.RunWorkload(core.NewRS104(), true, cfg)
		if err != nil {
			b.Fatal(err)
		}
		xo, err := experiments.RunWorkload(core.NewXorbas(), true, cfg)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig7Table2(os.Stdout, base, rs, xo)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWorkload(core.NewXorbas(), true, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3FacebookCluster regenerates Table 3: the 35-node
// Facebook test cluster with the production small-file distribution.
func BenchmarkTable3FacebookCluster(b *testing.B) {
	cfg := experiments.DefaultFacebook()
	once("table3", func() {
		rs, err := experiments.RunFacebook(core.NewRS104(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		xo, err := experiments.RunFacebook(core.NewXorbas(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Table3(os.Stdout, rs, xo)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFacebook(core.NewXorbas(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1FailureTrace regenerates Fig 1's month of node failures.
func BenchmarkFig1FailureTrace(b *testing.B) {
	once("fig1", func() {
		if err := experiments.Fig1(os.Stdout); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig1(nullWriter{}); err != nil {
			b.Fatal(err)
		}
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFig4FailureEvents regenerates Fig 4's per-event bars (200-file
// EC2 experiment, eight failure events) and Fig 5's time series.
func BenchmarkFig4FailureEvents(b *testing.B) {
	cfg := experiments.DefaultEC2(200)
	once("fig4", func() {
		rs, err := experiments.RunEC2(core.NewRS104(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		xo, err := experiments.RunEC2(core.NewXorbas(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig4(os.Stdout, rs, xo)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEC2(core.NewXorbas(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5TimeSeries regenerates Fig 5: cluster network, disk and
// CPU series at 5-minute resolution over the failure sequence.
func BenchmarkFig5TimeSeries(b *testing.B) {
	cfg := experiments.DefaultEC2(200)
	once("fig5", func() {
		rs, err := experiments.RunEC2(core.NewRS104(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		xo, err := experiments.RunEC2(core.NewXorbas(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig5(os.Stdout, rs, xo)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEC2(core.NewRS104(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Scatter regenerates Fig 6: metrics versus blocks lost
// across the 50/100/200-file experiments with least-squares fits.
func BenchmarkFig6Scatter(b *testing.B) {
	base := experiments.DefaultEC2(0)
	sizes := []int{50, 100, 200}
	once("fig6", func() {
		rs, err := experiments.RunFig6(core.NewRS104(), sizes, base)
		if err != nil {
			b.Fatal(err)
		}
		xo, err := experiments.RunFig6(core.NewXorbas(), sizes, base)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig6(os.Stdout, rs, xo)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(core.NewXorbas(), []int{50}, base); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7WorkloadCompletion times the Fig 7 degraded WordCount run
// (the rows print under BenchmarkTable2RepairUnderWorkload).
func BenchmarkFig7WorkloadCompletion(b *testing.B) {
	cfg := experiments.DefaultWorkload()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWorkload(core.NewRS104(), true, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDrivenMonth replays a scaled Fig 1 failure trace for a
// simulated month against both coded clusters: the §1.1 standing-repair-
// traffic regime.
func BenchmarkTraceDrivenMonth(b *testing.B) {
	cfg := experiments.DefaultTraceDriven()
	once("trace", func() {
		for _, s := range []core.Scheme{core.NewRS104(), core.NewXorbas()} {
			r, err := experiments.RunTraceDriven(s, cfg)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("Trace month %-16s: %3d node failures, %4d repairs (%d light/%d heavy), %.1f GB repair reads (%.2f GB/day), %d blocks lost\n",
				r.Scheme, r.NodesFailed, r.BlocksRepaired, r.LightRepairs, r.HeavyRepairs,
				r.RepairTrafficGB, r.AvgDailyRepairGB, r.DataLossBlocks)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTraceDriven(core.NewXorbas(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationImpliedParity compares the deployed implied-parity
// layout (16 blocks) against storing S3 explicitly (17 blocks): same
// locality, 0.6x vs 0.7x storage overhead.
func BenchmarkAblationImpliedParity(b *testing.B) {
	once("ab-implied", func() {
		implied := lrc.NewXorbas()
		p := lrc.Xorbas
		p.StoreImplied = true
		stored, err := lrc.New(p)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("Ablation: implied parity — stored=%d overhead=%.1fx locality=%d d=%d | explicit S3 — stored=%d overhead=%.1fx locality=%d d=%d\n",
			implied.NStored(), implied.StorageOverhead(), implied.Locality(), implied.MinDistance(),
			stored.NStored(), stored.StorageOverhead(), stored.Locality(), stored.MinDistance())
	})
	p := lrc.Xorbas
	p.StoreImplied = true
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, 1<<16)
	}
	c, err := lrc.New(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(10 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLightVsHeavy compares repair bytes with the light
// decoder enabled (normal Xorbas) against a heavy-only policy, on the
// same single-node failure.
func BenchmarkAblationLightVsHeavy(b *testing.B) {
	once("ab-light", func() {
		c := lrc.NewXorbas()
		exists := make([]bool, 16)
		avail := make([]bool, 16)
		for i := range exists {
			exists[i], avail[i] = true, true
		}
		avail[3] = false
		light, _ := c.PlanRepair(3, exists, avail, true)
		// Heavy-only: forbid the light recipe by pretending a groupmate
		// is down, then count a deployed heavy read set.
		avail[4] = false
		heavy, _ := c.PlanRepair(3, exists, avail, true)
		fmt.Printf("Ablation: light repair reads %d blocks; heavy-only reads %d (deployed)\n",
			len(light.Reads), len(heavy.Reads))
	})
	c := lrc.NewXorbas()
	exists := make([]bool, 16)
	avail := make([]bool, 16)
	for i := range exists {
		exists[i], avail[i] = true, true
	}
	avail[3] = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PlanRepair(3, exists, avail, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocalitySweep sweeps the group size r and reports the
// Theorem 2 distance bound and repair cost per r — the locality/distance
// tradeoff the paper characterizes.
func BenchmarkAblationLocalitySweep(b *testing.B) {
	once("ab-sweep", func() {
		fmt.Println("Ablation: locality sweep, k=10, 4 global parities")
		fmt.Printf("  %3s %8s %10s %10s %12s\n", "r", "stored", "overhead", "bound d", "exact d")
		for _, r := range []int{2, 3, 5, 10} {
			p := lrc.Params{K: 10, GlobalParities: 4, GroupSize: r}
			c, err := lrc.New(p)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("  %3d %8d %9.1fx %10d %12d\n",
				r, c.NStored(), c.StorageOverhead(), c.MinDistanceBound(), c.MinDistance())
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := lrc.New(lrc.Params{K: 10, GlobalParities: 4, GroupSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		_ = c.MinDistance()
	}
}

// BenchmarkAblationRSReadSet quantifies §3.1.2's remark that the deployed
// RS BlockFixer reads 13 blocks where 10 suffice.
func BenchmarkAblationRSReadSet(b *testing.B) {
	s := core.NewRS104()
	exists := make([]bool, 14)
	avail := make([]bool, 14)
	for i := range exists {
		exists[i], avail[i] = true, true
	}
	avail[0] = false
	once("ab-rs", func() {
		dep, _, _ := s.PlanRepair(0, exists, avail, true)
		min, _, _ := s.PlanRepair(0, exists, avail, false)
		fmt.Printf("Ablation: deployed RS repair reads %d blocks; minimal reads %d\n", len(dep), len(min))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.PlanRepair(0, exists, avail, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationArchivalStripe evaluates §7's archival direction:
// large LRC stripes (k=50, r=5) keep repairs at r+… reads while the
// equivalent RS repair grows linearly with k.
func BenchmarkAblationArchivalStripe(b *testing.B) {
	once("ab-archival", func() {
		fmt.Println("Ablation: archival stripes (repair reads, single failure)")
		for _, k := range []int{10, 50, 100} {
			rsS, err := core.NewRS(k, k+4)
			if err != nil {
				b.Fatal(err)
			}
			lc, err := lrc.New(lrc.Params{K: k, GlobalParities: 4, GroupSize: 5})
			if err != nil {
				b.Fatal(err)
			}
			exists := mask(rsS.Slots(), true)
			avail := mask(rsS.Slots(), true)
			avail[1] = false
			rsReads, _, _ := rsS.PlanRepair(1, exists, avail, false)
			e2 := mask(lc.NStored(), true)
			a2 := mask(lc.NStored(), true)
			a2[1] = false
			plan, err := lc.PlanRepair(1, e2, a2, false)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("  k=%3d: RS reads %3d, LRC(r=5) reads %d (overheads %.2fx vs %.2fx)\n",
				k, len(rsReads), len(plan.Reads), rsS.StorageOverhead(), lc.StorageOverhead())
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lrc.New(lrc.Params{K: 50, GlobalParities: 4, GroupSize: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func mask(n int, v bool) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = v
	}
	return m
}

// BenchmarkAblationPyramidVsLRC compares the paper's LRC against the §6
// predecessor family (pyramid codes): pyramid saves one block of storage
// but leaves its global parities without local repair, which shows up in
// overall locality and in the expected single-failure repair reads.
func BenchmarkAblationPyramidVsLRC(b *testing.B) {
	once("ab-pyramid", func() {
		xor := lrc.NewXorbas()
		pyr, err := lrc.NewPyramid(lrc.Xorbas)
		if err != nil {
			b.Fatal(err)
		}
		rsAvg := 13.0 // deployed single-failure reads
		fmt.Println("Ablation: LRC vs pyramid code vs RS on the (10,4) precode")
		fmt.Printf("  %-14s %8s %10s %9s %9s %12s %8s\n",
			"code", "stored", "overhead", "data-r", "full-r", "E[reads|1]", "d")
		for _, row := range []struct {
			name string
			c    *lrc.Code
		}{{"LRC(10,6,5)", xor}, {"pyramid(10,4)", pyr}} {
			avg, _ := row.c.ExpectedRepairReads(1)
			fmt.Printf("  %-14s %8d %9.1fx %9d %9d %12.2f %8d\n",
				row.name, row.c.NStored(), row.c.StorageOverhead(),
				row.c.DataLocality(), row.c.Locality(), avg, row.c.MinDistance())
		}
		fmt.Printf("  %-14s %8d %9.1fx %9d %9d %12.2f %8d\n", "RS(10,4)", 14, 0.4, 10, 10, rsAvg, 5)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lrc.NewPyramid(lrc.Xorbas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReliabilitySweep sweeps the cross-rack bandwidth γ
// and node MTTF in the Section 4 model: the LRC's reliability edge over
// RS grows as bandwidth shrinks — the paper's closing claim that LRCs
// matter most "when the network bandwidth is the main performance
// bottleneck".
func BenchmarkAblationReliabilitySweep(b *testing.B) {
	once("ab-rel", func() {
		fmt.Println("Ablation: MTTDL (days) vs cross-rack bandwidth and node MTTF")
		fmt.Printf("  %8s %6s | %12s %12s %12s %10s\n", "γ (Gb/s)", "MTTF y", "3-rep", "RS(10,4)", "LRC(10,6,5)", "LRC/RS")
		for _, gbps := range []float64{0.1, 1, 10} {
			for _, mttf := range []float64{2, 4} {
				p := markov.FacebookParams()
				p.BandwidthBitsPerSec = gbps * 1e9
				p.NodeMTTFYears = mttf
				rows, err := markov.Table1(p)
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("  %8.1f %6.0f | %12.3E %12.3E %12.3E %10.1f\n",
					gbps, mttf, rows[0].MTTDLDays, rows[1].MTTDLDays, rows[2].MTTDLDays,
					rows[2].MTTDLDays/rows[1].MTTDLDays)
			}
		}
	})
	b.ResetTimer()
	p := markov.FacebookParams()
	for i := 0; i < b.N; i++ {
		if _, err := markov.Table1(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Kernel benchmarks (repro/internal/gf) ---

// BenchmarkGFMulAdd measures the GF(2^8) fused multiply-accumulate — the
// inner loop of every matrix-vector encode — on 1 MiB payloads with the
// cached coefficient tables. Must report 0 allocs/op: the table is built
// once per Field, never per call.
func BenchmarkGFMulAdd(b *testing.B) {
	f := gf.MustNew(8)
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	rand.New(rand.NewSource(41)).Read(src)
	f.MulAddSlice(0x1d, dst, src) // warm the cached table outside the timer
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MulAddSlice(0x1d, dst, src)
	}
	b.ReportMetric(float64(b.N)*float64(1<<20)/1e6/b.Elapsed().Seconds(), "MB/s")
}

// BenchmarkGFXOR measures the word-wise XOR kernel — the entire
// arithmetic of the Xorbas local parities — on 1 MiB payloads.
func BenchmarkGFXOR(b *testing.B) {
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(src)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gf.XORSlice(dst, src)
	}
	b.ReportMetric(float64(b.N)*float64(1<<20)/1e6/b.Elapsed().Seconds(), "MB/s")
}

// BenchmarkEncodeStripe measures full-stripe parity encoding through the
// store codecs' zero-allocation EncodeInto path (lane-packed wide tables:
// one lookup per data byte) at the streaming datapath's 10×1 MiB stripe
// geometry. MB/s counts data bytes in, matching the put path's view.
func BenchmarkEncodeStripe(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			codec := sc.codec()
			k, n := codec.K(), codec.NStored()
			data := make([][]byte, k)
			for i := range data {
				data[i] = make([]byte, 1<<20)
				rng.Read(data[i])
			}
			parity := make([][]byte, n-k)
			for j := range parity {
				parity[j] = make([]byte, 1<<20)
			}
			if err := codec.EncodeInto(data, parity, 1); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(k) << 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := codec.EncodeInto(data, parity, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(k<<20)/1e6/b.Elapsed().Seconds(), "MB/s")
		})
	}
}

// --- The metadata plane (repro/internal/meta) ---

// BenchmarkMetaCommit measures the plane's durable write path — encode,
// sharded apply, WAL append, fsync. The serial variant pays one fsync
// per commit; the group variant drives it from parallel committers, so
// concurrent records share fsyncs (group commit) and per-commit cost
// drops with parallelism.
func BenchmarkMetaCommit(b *testing.B) {
	val := make([]byte, 256)
	rand.New(rand.NewSource(5)).Read(val)
	open := func(b *testing.B) *meta.DB {
		db, err := meta.Open(meta.Options{Dir: b.TempDir(), CheckpointEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("serial", func(b *testing.B) {
		db := open(b)
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Put(fmt.Sprintf("o/%08d", i&4095), val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group", func(b *testing.B) {
		db := open(b)
		defer db.Close()
		var seq atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := seq.Add(1)
				if err := db.Put(fmt.Sprintf("o/%08d", i&4095), val); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		m := db.Metrics()
		if m.CommitBatches > 0 {
			b.ReportMetric(float64(m.CommitRecords)/float64(m.CommitBatches), "records/fsync")
		}
	})
}

// BenchmarkMetaScan measures a snapshot-consistent prefix scan draining
// 16k entries — the scrubber's manifest walk, minus the block reads.
func BenchmarkMetaScan(b *testing.B) {
	db, err := meta.Open(meta.Options{})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 256)
	rand.New(rand.NewSource(6)).Read(val)
	const keys = 1 << 14
	for i := 0; i < keys; i++ {
		if err := db.Put(fmt.Sprintf("o/%08d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.Scan("o/")
		n := 0
		for {
			if _, _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n != keys {
			b.Fatalf("scan saw %d of %d keys", n, keys)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(keys)*float64(b.N)/1e6/b.Elapsed().Seconds(), "Mkeys/s")
}

// --- The real datapath (repro/internal/store) ---

// storeCodecs are the two coded schemes on the byte-level store.
var storeCodecs = []struct {
	name  string
	codec func() store.Codec
}{
	{"rs10_4", func() store.Codec { return store.NewRS104Codec() }},
	{"xorbas10_6_5", func() store.Codec { return store.NewXorbasCodec() }},
}

// BenchmarkStorePut measures ingest throughput end to end: chunk, encode
// (parallel above 1 MiB stripes), CRC-frame, place rack-aware, write.
func BenchmarkStorePut(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 8<<20)
	rng.Read(payload)
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			s, err := store.New(store.Config{Codec: sc.codec()})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put("bench", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreStreamPut measures streaming ingest throughput at 64 MiB
// — chunk, encode, CRC-frame, place, write, one stripe at a time with
// memory bounded by the 10 MiB stripe rather than the object.
func BenchmarkStoreStreamPut(b *testing.B) {
	const size = 64 << 20
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			s, err := store.New(store.Config{Codec: sc.codec(), BlockSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.PutReader("bench", pattern.NewReader(size)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(size)*float64(b.N)/1e6/b.Elapsed().Seconds(), "MB/s")
		})
	}
}

// BenchmarkStoreStreamGet measures streaming read throughput at 64 MiB,
// with the read amplification (backend bytes fetched per object byte
// served) reported alongside.
func BenchmarkStoreStreamGet(b *testing.B) {
	const size = 64 << 20
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			s, err := store.New(store.Config{Codec: sc.codec(), BlockSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PutReader("bench", pattern.NewReader(size)); err != nil {
				b.Fatal(err)
			}
			var blocksRead, bytesRead int64
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := s.GetWriter("bench", io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				blocksRead += info.BlocksRead
				bytesRead += info.BytesRead
			}
			b.StopTimer()
			b.ReportMetric(float64(size)*float64(b.N)/1e6/b.Elapsed().Seconds(), "MB/s")
			b.ReportMetric(float64(blocksRead)/float64(b.N), "blocks-read/op")
			b.ReportMetric(float64(bytesRead)/float64(b.N), "bytes-read/op")
		})
	}
}

// BenchmarkCachedGetRange measures ranged reads of one hot window with
// the block cache on (warm) versus off (cold). The warm case is the
// cache's whole value proposition: bytes-read/op collapses to ~0
// because every covering block is served from memory, no backend I/O.
func BenchmarkCachedGetRange(b *testing.B) {
	const (
		size   = 16 << 20
		rngOff = 3 << 20
		rngLen = 1 << 20
	)
	for _, bc := range []struct {
		name       string
		cacheBytes int64
	}{
		{"cold", 0},
		{"warm", 256 << 20},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := store.New(store.Config{BlockSize: 1 << 20, CacheBytes: bc.cacheBytes})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PutReader("hot", pattern.NewReader(size)); err != nil {
				b.Fatal(err)
			}
			// One untimed pass warms the cache (a no-op when it's off).
			if _, err := s.GetRange("hot", rngOff, rngLen, io.Discard); err != nil {
				b.Fatal(err)
			}
			var blocksRead, bytesRead int64
			b.SetBytes(rngLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := s.GetRange("hot", rngOff, rngLen, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				blocksRead += info.BlocksRead
				bytesRead += info.BytesRead
			}
			b.StopTimer()
			b.ReportMetric(float64(rngLen)*float64(b.N)/1e6/b.Elapsed().Seconds(), "MB/s")
			b.ReportMetric(float64(blocksRead)/float64(b.N), "blocks-read/op")
			b.ReportMetric(float64(bytesRead)/float64(b.N), "bytes-read/op")
		})
	}
}

// BenchmarkStoreRepair measures the full BlockFixer cycle for one lost
// block — scrub walk, prioritized queue, reconstruct, rewrite — on real
// bytes. bytes/op is the repair traffic (blocks read for reconstruction):
// the LRC's light decoder reads half of what RS does, the Figs 4–6 claim
// on the real datapath.
func BenchmarkStoreRepair(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	payload := make([]byte, 10*(64<<10)) // one full stripe
	rng.Read(payload)
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			s, err := store.New(store.Config{Codec: sc.codec()})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Put("bench", payload); err != nil {
				b.Fatal(err)
			}
			mb := s.Backend().(*store.MemBackend)
			rm := store.NewRepairManager(s, 2)
			rm.Start()
			defer rm.Stop()
			scr := store.NewScrubber(s, rm, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				node, key, err := s.BlockLocation("bench", 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := mb.Delete(node, key); err != nil {
					b.Fatal(err)
				}
				scr.ScrubOnce()
				rm.Drain()
			}
			b.StopTimer()
			m := s.Metrics()
			if m.RepairedBlocks != int64(b.N) {
				b.Fatalf("repaired %d blocks over %d iterations", m.RepairedBlocks, b.N)
			}
			b.SetBytes(m.RepairBytesRead / int64(b.N))
			b.ReportMetric(float64(m.RepairBlocksRead)/float64(b.N), "blocks-read/op")
			b.ReportMetric(float64(m.RepairBytesRead)/float64(b.N), "repair-bytes/op")
		})
	}
}

// BenchmarkStoreRepairNode measures node-failure repair throughput: kill
// one node, enqueue its blocks via the manifest-only presence walk, and
// drain the repair queue. MB/s is payload rebuilt and rewritten per
// second — the fixer throughput the paper bounds — and bytes-read/op is
// the repair traffic, where the LRC's light decoder reads ~half of what
// RS does for the same losses.
func BenchmarkStoreRepairNode(b *testing.B) {
	const size = 16 << 20
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			s, err := store.New(store.Config{Codec: sc.codec(), BlockSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PutReader("bench", pattern.NewReader(size)); err != nil {
				b.Fatal(err)
			}
			rm := store.NewRepairManager(s, 2)
			rm.Start()
			defer rm.Stop()
			scr := store.NewScrubber(s, rm, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				victim := i % s.Nodes()
				s.KillNode(victim)
				scr.ScrubPresence()
				rm.Drain()
				s.ReviveNode(victim)
			}
			b.StopTimer()
			m := s.Metrics()
			if m.RepairedBlocks == 0 {
				b.Fatal("node kills repaired no blocks")
			}
			b.SetBytes(m.RepairedBytes / int64(b.N))
			b.ReportMetric(float64(m.RepairedBytes)/1e6/b.Elapsed().Seconds(), "MB/s")
			b.ReportMetric(float64(m.RepairBytesRead)/float64(b.N), "bytes-read/op")
			b.ReportMetric(float64(m.RepairBlocksRead)/float64(b.N), "blocks-read/op")
		})
	}
}

// BenchmarkStoreNetRepair is BenchmarkStoreRepairNode with every block
// behind a real TCP socket: one loopback netblock server per node, the
// store reaching them through the pooled client. MB/s is payload rebuilt
// per second through the wire path, and wire-bytes/op is what actually
// crossed the network per node kill — where the LRC moves ~half of what
// RS does.
func BenchmarkStoreNetRepair(b *testing.B) {
	const size = 16 << 20
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			codec := sc.codec()
			n := codec.NStored()
			servers := make([]*netblock.Server, n)
			addrs := make([]string, n)
			for i := 0; i < n; i++ {
				srv, addr, err := netblock.StartLocal(store.NewMemBackend())
				if err != nil {
					b.Fatal(err)
				}
				servers[i] = srv
				addrs[i] = addr
			}
			defer func() {
				for _, srv := range servers {
					srv.Close()
				}
			}()
			client, err := netblock.Dial(addrs, netblock.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			s, err := store.New(store.Config{Codec: codec, Backend: client, Nodes: n, Racks: 8, BlockSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PutReader("bench", pattern.NewReader(size)); err != nil {
				b.Fatal(err)
			}
			rm := store.NewRepairManager(s, 2)
			rm.Start()
			defer rm.Stop()
			scr := store.NewScrubber(s, rm, 0)
			wireBase := s.Metrics()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				victim := i % s.Nodes()
				s.KillNode(victim)
				scr.ScrubPresence()
				rm.Drain()
				s.ReviveNode(victim)
			}
			b.StopTimer()
			m := s.Metrics()
			if m.RepairedBlocks == 0 {
				b.Fatal("node kills repaired no blocks")
			}
			b.SetBytes(m.RepairedBytes / int64(b.N))
			b.ReportMetric(float64(m.RepairedBytes)/1e6/b.Elapsed().Seconds(), "MB/s")
			wire := (m.WireSentBytes + m.WireRecvBytes) - (wireBase.WireSentBytes + wireBase.WireRecvBytes)
			b.ReportMetric(float64(wire)/float64(b.N), "wire-bytes/op")
			b.ReportMetric(float64(m.RepairBlocksRead)/float64(b.N), "blocks-read/op")
		})
	}
}

// BenchmarkRebalance measures elastic membership's worst-case topology
// change: a node dies unannounced and is then decommissioned, so its
// whole drain runs as scheduled repair (§1.1) — every block rebuilt
// from stripe survivors, the path where the codec's repair locality
// decides the bill. After each drain a fresh node joins and the
// rebalancer fills it back to the mean, keeping the active set at full
// strength across iterations. MB/s is payload drained per second;
// read-blocks/moved shows the LRC rebuilding from its 5-block groups
// where RS(10,4) reads 10.
func BenchmarkRebalance(b *testing.B) {
	const size = 16 << 20
	for _, sc := range storeCodecs {
		b.Run(sc.name, func(b *testing.B) {
			s, err := store.New(store.Config{Codec: sc.codec(), BlockSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if err := s.PutReader(fmt.Sprintf("bench%d", i), pattern.NewReader(size)); err != nil {
					b.Fatal(err)
				}
			}
			rm := store.NewRepairManager(s, 2)
			rm.Start()
			defer rm.Stop()
			rb := store.NewRebalancer(s, rm, 0)
			victim := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.KillNode(victim)
				if err := s.Decommission(victim); err != nil {
					b.Fatal(err)
				}
				rb.RebalanceOnce() // enqueue the dead drain
				rm.Drain()
				rb.RebalanceOnce() // retire the emptied drainer
				joiner, err := s.AddNode("")
				if err != nil {
					b.Fatal(err)
				}
				rb.RebalanceOnce() // fill the joiner back to the mean
				if st := s.MemberState(victim); st != store.NodeDead {
					b.Fatalf("drain %d did not complete: %s", i, st)
				}
				victim = joiner
			}
			b.StopTimer()
			m := s.Metrics()
			moved := m.RebalancedBlocks + m.RepairedBlocks
			if moved == 0 {
				b.Fatal("rebalance moved no blocks")
			}
			movedBytes := m.RebalancedBytes + m.RepairedBytes
			b.SetBytes(movedBytes / int64(b.N))
			b.ReportMetric(float64(movedBytes)/1e6/b.Elapsed().Seconds(), "MB/s")
			// The dead drain is where codecs diverge: blocks read per
			// block rebuilt (joiner fills are plain copies, 1:1, and are
			// excluded so the decode bill stays visible).
			if m.RepairedBlocks > 0 {
				b.ReportMetric(float64(m.RepairBlocksRead)/float64(m.RepairedBlocks), "read-blocks/drained")
			}
			b.ReportMetric(float64(moved)/float64(b.N), "blocks-moved/op")
		})
	}
}

// BenchmarkEncodeThroughput measures payload encode rates of the three
// schemes' codecs on 64 MB-per-block-scale stripes (scaled down to keep
// the bench quick; rates are size-independent beyond cache effects).
func BenchmarkEncodeThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, 10)
	for i := range data {
		data[i] = make([]byte, 1<<20)
		rng.Read(data[i])
	}
	b.Run("rs10_4", func(b *testing.B) {
		c := core.NewRS104().Code()
		b.SetBytes(10 << 20)
		for i := 0; i < b.N; i++ {
			if _, err := c.Encode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xorbas10_6_5", func(b *testing.B) {
		c := core.NewXorbas().Code()
		b.SetBytes(10 << 20)
		for i := 0; i < b.N; i++ {
			if _, err := c.Encode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHedgedGet measures the tail-latency story of hedged reads:
// one node of twenty answers 10ms late on every request (a straggler,
// not a corpse — the breaker never opens), and each sub-benchmark GETs
// the same 2-stripe object. Unhedged, every GET waits out the straggler
// once per stripe; hedged, the read fires the reconstruction race past
// the p90 latency and the decode beats the slow socket. p99-ms is the
// per-GET 99th percentile — the paper-adjacent "tail at scale" claim on
// this datapath.
func BenchmarkHedgedGet(b *testing.B) {
	const (
		nodes = 20
		stall = 10 * time.Millisecond
		size  = 2 * 10 * (64 << 10) // 2 full stripes
	)
	for _, mode := range []struct {
		name     string
		quantile float64
	}{
		{"unhedged", 0},
		{"hedged", 0.9},
	} {
		b.Run(mode.name, func(b *testing.B) {
			fb := store.NewFaultBackend(store.NewMemBackend(), nodes)
			s, err := store.New(store.Config{
				Backend:       fb,
				Nodes:         nodes,
				BlockSize:     64 << 10,
				HedgeQuantile: mode.quantile,
				HedgeMinDelay: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.PutReader("bench", pattern.NewReader(size)); err != nil {
				b.Fatal(err)
			}
			// Slow exactly one node that holds a block of stripe 0, so
			// every GET meets the straggler.
			slow, _, err := s.BlockLocation("bench", 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			fb.SetFault(slow, store.Fault{Latency: stall})
			// Warm the latency histogram so the hedge quantile is real.
			for i := 0; i < 8; i++ {
				if _, err := s.GetWriter("bench", io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			lats := make([]time.Duration, 0, b.N)
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := s.GetWriter("bench", io.Discard); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(start))
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p99 := lats[len(lats)*99/100]
			b.ReportMetric(float64(p99)/1e6, "p99-ms")
			m := s.Metrics()
			b.ReportMetric(float64(m.HedgeFires)/float64(b.N), "hedge-fires/op")
			b.ReportMetric(float64(m.HedgeWins)/float64(b.N), "hedge-wins/op")
		})
	}
}

// BenchmarkGatewayMixed drives the HTTP serving tier end to end: a pool
// of concurrent clients alternating 4 MiB PUTs and GETs over real TCP
// against the xorbasd gateway handler, with aggregate MB/s and the
// gateway's own p99 per verb reported. This is the serving-path
// companion to BenchmarkStoreStream*: the same datapath plus HTTP
// framing, admission, and metrics.
func BenchmarkGatewayMixed(b *testing.B) {
	const objSize = 4 << 20
	s, err := store.New(store.Config{BlockSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	g, err := gateway.New(gateway.Config{Store: s})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(g)
	defer srv.Close()
	payload := make([]byte, objSize)
	rand.New(rand.NewSource(17)).Read(payload)
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequest("PUT", fmt.Sprintf("%s/t/bench/seed-%d", srv.URL, i), bytes.NewReader(payload))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("seed put: status %d", resp.StatusCode)
		}
	}
	var moved atomic.Int64
	var workers atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workers.Add(1)
		client := &http.Client{}
		for i := 0; pb.Next(); i++ {
			if i%2 == 0 {
				url := fmt.Sprintf("%s/t/bench/w-%d", srv.URL, id)
				req, _ := http.NewRequest("PUT", url, bytes.NewReader(payload))
				resp, err := client.Do(req)
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("put: status %d", resp.StatusCode)
				}
				moved.Add(objSize)
			} else {
				resp, err := client.Get(fmt.Sprintf("%s/t/bench/seed-%d", srv.URL, i%4))
				if err != nil {
					b.Fatal(err)
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("get: status %d", resp.StatusCode)
				}
				moved.Add(n)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(moved.Load())/1e6/b.Elapsed().Seconds(), "MB/s")
	m := g.Metrics()
	b.ReportMetric(m.Verbs["GET"].P99Ms, "get-p99-ms")
	b.ReportMetric(m.Verbs["PUT"].P99Ms, "put-p99-ms")
}
